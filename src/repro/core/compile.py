"""Query compilation and the shared prefix-trie filter bank.

The Section 8 filter (``filter.py``) interprets one query tree per event: frontier
records are dataclass instances, node tests are compared with function calls, and every
subscription re-does the name/axis work of every other subscription.  This module is
the compiled counterpart, in two layers:

**Compiled plans** (:class:`CompiledQuery`).  Each query is lowered into a flat,
slot-addressed form: query nodes become integer slots (0 = the query root, pre-order),
axes become integer codes (:data:`AX_CHILD`/:data:`AX_DESC`/:data:`AX_ATTR`), node
tests carry ids interned in a bank-wide name table (compact slot-addressed metadata —
the trie's dispatch dictionaries key on the test *strings*, since event names arrive
as strings), children/parents become tuples of slot ids, and the
leaf value tests become precompiled predicate closures (a comparison against a constant
compiles to one :func:`~repro.xpath.values.compare_atomic` call; anything else falls
back to the symbolic truth-set evaluator, so semantics are untouched).

**The shared prefix trie** (:class:`CompiledFilterBank`).  All registered subscriptions
are merged into one trie keyed by ``(axis class, node test)``: two steps of different
queries share a trie node exactly when they have the same axis class (level-checked
``child``/``attribute`` vs ``descendant``) and the same node test, and their parents
already share.  A common prefix like ``/catalog/product`` is therefore matched against
the document *once* for any number of subscriptions, and work fans out to individual
queries only at the divergence points.  The runtime of the trie is purely structural —
it computes, per element event, the set of trie nodes whose step path matches the
element (a superset of the per-query candidate matches, which additionally depend on
per-query ``matched`` pruning) — and it needs no level arithmetic at all:

* a *level-checked* step instance is stored in the stack frame of the element whose
  candidate match created it, so it can only fire for that element's direct children;
* a *descendant* step instance is registered in a global count map and unregistered
  when its spawning element's frame is popped, so it fires anywhere in the subtree.

Per-query state is touched only when a trie node fires for one of the query's slots
(or when text must be buffered, or children resolved at an end event — both of which
are only possible after a fire).  That state is a faithful, flat re-implementation of
the interpreted filter's frontier dynamics — records are small lists, indexes replace
scans — and it reproduces :class:`~repro.core.filter.FilterStatistics` byte-for-byte,
using the same lazy high-water accounting as the PR-1 indexed bank (the Theorem 8.8
bit cost is nondecreasing in the document level, so observing a skipped window at its
maximum level reproduces the per-event peak exactly).  The interpreted filter stays as
the semantics reference; a hypothesis property test asserts that the compiled engine,
the indexed bank and the naive bank agree on matched sets and full per-query
statistics.

Three throughput layers sit on top of the trie (PR 3):

**Plan deduplication.**  Plans are interned by the canonical form of the query (its
deterministic XPath serialization): ``N`` subscriptions with equal queries share one
:class:`_Runtime` and fan out only at result-assembly time, so the per-event cost
scales with *distinct* plans.  Two equal queries evaluate identically by construction,
so the shared per-runtime :class:`~repro.core.filter.FilterStatistics` object is the
statistics either would have produced on its own.

**Incremental trie maintenance.**  ``register``/``unregister`` splice a plan's steps
into/out of the live trie (updating the precomputed edge lists in place and pruning
trie nodes that lose their last step bottom-up) instead of discarding it, making
subscription churn O(query size) rather than O(total registered steps).
:meth:`CompiledFilterBank.rebuild_trie` forces the old from-scratch rebuild — the
churn benchmark's baseline and the equivalence oracle of the property tests.

**The match-only fast path.**  ``CompiledFilterBank(stats=False)`` (alias
:class:`MatchOnlyFilterBank`) runs a reduced per-query state machine that tracks only
the ``matched`` bits the Boolean outcome depends on: no ``FilterStatistics``, no
peak-frontier/peak-bits/high-water bookkeeping, no frontier-scan-order replay, and
per-document runtime state is initialized lazily at a runtime's first fire point, so
untouched subscriptions cost nothing per document.  Because a ``matched`` flag only
accumulates with OR, a decided outcome is final and the fast path always retires a
runtime mid-document once its outcome is known.  The stats-accurate path is untouched
and stays byte-identical to the interpreted engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from ..instrument.memory import bits_for
from ..xmlstream.document import XMLDocument
from ..xmlstream.events import (
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
    Text,
)
from ..xmlstream.parse import (
    TOK_END,
    TOK_END_DOC,
    TOK_START,
    TOK_START_DOC,
    TOK_TEXT,
    Chunk,
    StreamingParser,
    Token,
    document_tokens,
)
from ..xpath.ast import Comparison, Constant, NodeRef
from ..xpath.query import ATTRIBUTE, CHILD, DESCENDANT, Query
from ..xpath.truthset import AtomicPredicateTruthSet, truth_set
from ..xpath.values import compare_atomic
from .filter import FilterStatistics, StreamingFilter
from .filterbank import BankResult, _LevelHighWater

#: integer axis codes of the compiled plan
AX_CHILD = 0  # child axis (or an axis-less node): level-checked, removed while open
AX_DESC = 1  # descendant axis: fires at any level inside its scope, never removed
AX_ATTR = 2  # attribute axis: level-checked like child but never removed (filter.py)

_AXIS_CODE = {CHILD: AX_CHILD, None: AX_CHILD, DESCENDANT: AX_DESC, ATTRIBUTE: AX_ATTR}

#: memoized :func:`~repro.instrument.memory.bits_for` — the Theorem 8.8 accounting
#: calls it three times per observation, and a dict probe is ~10x cheaper than the
#: ``math.log2`` round trip while remaining exactly equal by construction.  The cache
#: is size-capped: buffer sizes are unbounded inputs, and a long-lived pub/sub process
#: must not leak one entry per distinct buffer size it ever observes.
_BITS_CACHE: Dict[int, int] = {}
_BITS_CACHE_LIMIT = 65536


def _bits(count: int) -> int:
    cached = _BITS_CACHE.get(count)
    if cached is None:
        cached = bits_for(count)
        if len(_BITS_CACHE) < _BITS_CACHE_LIMIT:
            _BITS_CACHE[count] = cached
    return cached


@dataclass
class BankMemoryReport:
    """One bank's modeled-bits memory report (the resource governor's input).

    ``standing_bits`` is the structural cost of the registered state itself —
    the interned name table, the shared trie (one axis-class + node-test pair
    per node) and each distinct plan's slot-addressed arrays — which exists
    whether or not documents flow.  ``peak_document_bits`` is the largest
    Theorem 8.8 per-subscription high-water mark any plan has observed over the
    bank's lifetime (stats mode), or the modeled cost of the largest value
    buffer ever held (match-only mode, where frontier records are deliberately
    not counted — see :meth:`CompiledFilterBank.memory_report`).
    ``modeled_bits`` is the governor's number: standing state plus the sum of
    per-plan lifetime peaks, an upper bound on the modeled bits live at any
    instant so far.  ``worker_rss_bytes`` is filled by the sharded bank only.
    """

    subscriptions: int
    distinct_plans: int
    trie_nodes: int
    standing_bits: int
    peak_document_bits: int
    peak_frontier_records: int
    peak_buffer_chars: int
    modeled_bits: int
    stats_mode: bool
    worker_rss_bytes: Tuple[int, ...] = field(default=())

    @property
    def modeled_bytes(self) -> int:
        """``modeled_bits`` rounded up to whole bytes."""
        return (self.modeled_bits + 7) // 8


def _plan_standing_bits(slot_count: int, qnode_bits: int, name_bits: int) -> int:
    """Structural bits of one compiled plan's slot-addressed arrays.

    Per slot: a 2-bit axis code, an interned node-test id, a parent slot
    reference and the leaf flag — the compiled counterpart of the query tree
    the paper's algorithm keeps resident.
    """
    return slot_count * (2 + name_bits + qnode_bits + 1)


# --------------------------------------------------------------------------- plans
def _compile_truth(node) -> Optional[Callable[[str], bool]]:
    """Compile the leaf's truth-set membership test into the cheapest exact form.

    ``None`` means the truth set is universal: the record is marked matched without
    materializing the buffered string value at all (the statistics still count the
    evaluation, as the interpreted filter does).  A single comparison of the variable
    against a constant compiles to one ``compare_atomic`` call; everything else falls
    back to the symbolic evaluator, which is semantically authoritative.
    """
    ts = truth_set(node)
    if not isinstance(ts, AtomicPredicateTruthSet):
        return None  # universal: every value belongs
    predicate = ts.predicate
    if isinstance(predicate, Comparison):
        left, right = predicate.left, predicate.right
        op = predicate.op
        if isinstance(left, NodeRef) and isinstance(right, Constant):
            constant = right.value
            return lambda value: compare_atomic(op, value, constant)
        if isinstance(right, NodeRef) and isinstance(left, Constant):
            constant = left.value
            return lambda value: compare_atomic(op, constant, value)
    return ts.contains


class CompiledQuery:
    """A query lowered to flat, slot-addressed arrays (slot 0 is the query root)."""

    __slots__ = (
        "query",
        "slot_count",
        "axis",
        "ntests",
        "ntest_ids",
        "parent",
        "children",
        "is_leaf",
        "truth",
        "root_children",
        "qnode_bits",
        "is_path",
    )

    def __init__(self, query: Query, names: Dict[str, int]) -> None:
        StreamingFilter._check_supported(query)
        nodes = query.nodes()  # pre-order, root first
        index = {id(node): slot for slot, node in enumerate(nodes)}
        self.query = query
        self.slot_count = len(nodes)
        self.axis = [AX_CHILD if node.is_root() else _AXIS_CODE[node.axis]
                     for node in nodes]
        self.ntests = [node.ntest for node in nodes]
        self.ntest_ids = [
            -1 if node.ntest is None else names.setdefault(node.ntest, len(names))
            for node in nodes
        ]
        self.parent = [0 if node.parent is None else index[id(node.parent)]
                       for node in nodes]
        self.children = [tuple(index[id(child)] for child in node.children)
                         for node in nodes]
        self.is_leaf = [node.is_leaf() for node in nodes]
        self.truth = [_compile_truth(node) if node.is_leaf() else None
                      for node in nodes]
        self.root_children = self.children[0]
        # FrontierMemoryModel(query_size=max(|Q|, 1)): log(|Q|+1) bits per node ref
        self.qnode_bits = bits_for(max(query.size(), 1) + 1)
        # a *path plan* is a pure chain (every node has at most one child): its only
        # leaf is the last pre-order slot, and a structural trie fire of that leaf is
        # already an exact candidate match — the match-only fast path exploits this
        # by keeping no frontier records at all for such plans
        self.is_path = all(len(children) <= 1 for children in self.children)


def compile_query(query: Query, names: Optional[Dict[str, int]] = None) -> CompiledQuery:
    """Lower one query into its compiled plan (standalone helper for tests/tools)."""
    return CompiledQuery(query, {} if names is None else names)


# --------------------------------------------------------------------------- the trie
class _TrieNode:
    """One shared step of the prefix trie.

    ``child_*`` edges are level-checked steps (``child`` and ``attribute`` axes merge:
    their structural fire condition is identical); ``desc_*`` edges are descendant
    steps.  Wildcard edges are kept apart from concrete ones because ``*`` matches any
    element name and ``@*`` any attribute name.  ``subs`` lists the ``(runtime, slot)``
    pairs mapped onto this trie node.
    """

    __slots__ = ("child_map", "desc_map", "subs",
                 "child_concrete", "child_wild", "child_attr_wild", "desc_edges")

    def __init__(self) -> None:
        self.child_map: Dict[str, _TrieNode] = {}
        self.desc_map: Dict[str, _TrieNode] = {}
        self.subs: List[tuple] = []
        self.child_concrete: List[tuple] = []
        self.child_wild: Optional[_TrieNode] = None
        self.child_attr_wild: Optional[_TrieNode] = None
        self.desc_edges: List[tuple] = []

    def get_or_add(self, level_checked: bool, ntest: str) -> "_TrieNode":
        step_map = self.child_map if level_checked else self.desc_map
        node = step_map.get(ntest)
        if node is None:
            node = step_map[ntest] = _TrieNode()
        return node

    def finalize(self) -> None:
        """Precompute the edge lists the runtime frame builder iterates."""
        self.child_concrete = [(ntest, node) for ntest, node in self.child_map.items()
                               if ntest not in ("*", "@*")]
        self.child_wild = self.child_map.get("*")
        self.child_attr_wild = self.child_map.get("@*")
        # (kind, ntest, node): kind 0 = concrete name bucket, 1 = ``*``, 2 = ``@*``
        self.desc_edges = [
            (1 if ntest == "*" else 2 if ntest == "@*" else 0, ntest, node)
            for ntest, node in self.desc_map.items()
        ]
        for node in self.child_map.values():
            node.finalize()
        for node in self.desc_map.values():
            node.finalize()


# --------------------------------------------------------------------------- runtimes
# record layout: [level, matched, alive, opens, seq]; ``opens`` is the per-record
# stack of (level, buffer offset) pairs for leaf slots and None for internal slots.
# ``seq`` is the frontier insertion sequence number: the interpreted filter scans its
# frontier *list* at each start event, and that scan order is observable — the order
# children are inserted decides which parent group folds first at resolution, which
# can decide a reinserted child-axis record's matched flag.  Processing fires in seq
# order reproduces the scan exactly.
class _Runtime:
    """Per-plan mutable state (the compiled analogue of a StreamingFilter).

    With plan interning one runtime serves every subscription whose query has the same
    canonical form; ``names`` lists those subscriptions in registration order and
    ``keyform`` is the interning key.  ``trie_nodes`` is the slot-indexed list of trie
    nodes this runtime's steps were spliced onto (``None`` until the trie is built),
    kept so ``unregister`` can splice them out again without a rebuild.  ``doc_gen``,
    ``decided`` and ``outcome`` belong to the match-only fast path, which initializes
    per-document state lazily at the runtime's first fire point.
    """

    __slots__ = ("name", "plan", "stats", "recs", "frontier_size", "buf_parts",
                 "buf_size", "ref_count", "recs_by_level", "leaf_opens", "last_ts",
                 "root_rec", "next_seq", "names", "keyform", "trie_nodes", "doc_gen",
                 "decided", "outcome", "lifetime_peak_bits", "lifetime_peak_records")

    def __init__(self, name: str, plan: CompiledQuery, keyform: str = "") -> None:
        self.name = name
        self.plan = plan
        self.keyform = keyform
        self.names = [name]
        self.trie_nodes: Optional[List[_TrieNode]] = None
        self.stats = FilterStatistics()
        self.last_ts = 0
        self.root_rec: Optional[list] = None
        self.doc_gen = 0
        self.decided = False
        self.outcome = False
        # lifetime (cross-document) high-water marks for the resource governor:
        # ``stats`` is replaced at each startDocument, so per-document peaks are
        # folded into these at endDocument (stats-accurate path only)
        self.lifetime_peak_bits = 0
        self.lifetime_peak_records = 0
        self.reset()

    def reset(self) -> None:
        """Discard in-flight document state, keeping statistics (filter.reset())."""
        self.recs: List[list] = [[] for _ in range(self.plan.slot_count)]
        self.frontier_size = 0
        self.buf_parts: List[Token] = []
        self.buf_size = 0
        self.ref_count = 0
        self.recs_by_level: Dict[int, list] = {}
        self.leaf_opens: Dict[int, list] = {}
        self.next_seq = 0


def _slice_parts(parts: List[Token], start: int) -> str:
    """The buffered string value from character offset ``start`` (Fig. 20's data)."""
    pieces: List[str] = []
    offset = 0
    for part in parts:
        begin, end = part[2], part[3]
        length = end - begin
        if offset + length > start:
            if start > offset:
                pieces.append(part[1][begin + (start - offset):end])
            else:
                pieces.append(part[1][begin:end])
        offset += length
    return "".join(pieces)


def _slice_from(runtime: _Runtime, start: int) -> str:
    """The runtime's buffered string value from character offset ``start``."""
    return _slice_parts(runtime.buf_parts, start)


def _build_frame(fired: List[_TrieNode], desc_by_name: Dict[str, dict],
                 desc_wild: dict, desc_attr_wild: dict) -> Optional[tuple]:
    """Build one element frame from the trie nodes that fired at its start event.

    Shared by the stats-accurate and match-only hot loops: collects the fired
    nodes' level-checked edges into the frame's dispatch buckets and registers
    their descendant edges in the global count maps, returning the ``(expect,
    wild, attr_wild, desc_added)`` tuple (or ``None`` when nothing is expected,
    so the end handler can skip the frame entirely).
    """
    expect = None
    wild = None
    attr_wild = None
    desc_added = None
    for node in fired:
        if node.child_concrete:
            if expect is None:
                expect = {}
            for ntest, child in node.child_concrete:
                bucket = expect.get(ntest)
                if bucket is None:
                    expect[ntest] = [child]
                else:
                    bucket.append(child)
        if node.child_wild is not None:
            if wild is None:
                wild = []
            wild.append(node.child_wild)
        if node.child_attr_wild is not None:
            if attr_wild is None:
                attr_wild = []
            attr_wild.append(node.child_attr_wild)
        if node.desc_edges:
            if desc_added is None:
                desc_added = []
            for kind, ntest, child in node.desc_edges:
                if kind == 0:
                    bucket = desc_by_name.get(ntest)
                    if bucket is None:
                        bucket = desc_by_name[ntest] = {}
                elif kind == 1:
                    bucket = desc_wild
                else:
                    bucket = desc_attr_wild
                bucket[child] = bucket.get(child, 0) + 1
                desc_added.append((bucket, child))
    if expect is None and wild is None and attr_wild is None \
            and desc_added is None:
        return None
    return (expect, wild, attr_wild, desc_added)


def event_tokens(events: Iterable[Event]) -> Iterator[Token]:
    """Adapt an event stream to the token representation the compiled engine runs on."""
    for event in events:
        etype = type(event)
        if etype is StartElement:
            yield (TOK_START, event.name)
        elif etype is EndElement:
            yield (TOK_END, event.name)
        elif etype is Text:
            content = event.content
            yield (TOK_TEXT, content, 0, len(content))
        elif etype is StartDocument:
            yield (TOK_START_DOC,)
        elif etype is EndDocument:
            yield (TOK_END_DOC,)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown event {event!r}")


#: anything :meth:`CompiledFilterBank.filter_many` accepts as one document
DocumentLike = Union[XMLDocument, Iterable[Event]]


class CompiledFilterBank:
    """A multi-subscription filter bank running on compiled shared prefix-trie plans.

    API-compatible with :class:`~repro.core.filterbank.FilterBank` (register /
    unregister / filter_events / filter_document / filter_stream / filter_many), plus
    :meth:`filter_text` which runs the zero-copy token pipeline straight off XML text.
    With ``stats=True`` (the default) matched sets and per-query
    :class:`~repro.core.filter.FilterStatistics` are byte-identical to the interpreted
    engines; ``stats=False`` selects the match-only fast path, which reports the same
    matched sets with an empty ``per_query_stats`` at a fraction of the per-event cost.

    Plans are interned by canonical query form (subscriptions with equal queries share
    one runtime) and ``register``/``unregister`` maintain the shared trie
    incrementally once it has been built.
    """

    def __init__(self, *, stats: bool = True) -> None:
        self._stats = stats
        self._subs: Dict[str, _Runtime] = {}  # name -> shared runtime (reg. order)
        self._runtimes: Dict[str, _Runtime] = {}  # canonical form -> runtime
        self._names: Dict[str, int] = {}  # interned node-test name ids (plan-wide)
        self._trie_root: Optional[_TrieNode] = None
        self._generation = 0  # fast-path document generation counter
        self._peak_value_chars = 0  # lifetime high-water of any value buffer

    # ------------------------------------------------------------------ registration
    def register(self, name: str, query: Query) -> None:
        """Register a subscription under a unique name.

        Raises ``ValueError`` for duplicate names and
        :class:`~repro.core.errors.UnsupportedQueryError` for unsupported queries.
        A query equal (by canonical form) to an already-registered one shares that
        query's compiled plan and runtime; a new plan is spliced into the live trie
        in O(query size) instead of forcing a rebuild.
        """
        if name in self._subs:
            raise ValueError(f"a subscription named {name!r} is already registered")
        StreamingFilter._check_supported(query)
        keyform = query.to_xpath()
        runtime = self._runtimes.get(keyform)
        if runtime is None:
            plan = CompiledQuery(query, self._names)
            runtime = _Runtime(name, plan, keyform)
            self._runtimes[keyform] = runtime
            if self._trie_root is not None:
                self._splice_in(runtime)
        else:
            runtime.names.append(name)
        self._subs[name] = runtime

    def unregister(self, name: str) -> None:
        """Remove a subscription; unknown names raise ``KeyError``.

        The last subscription of a plan splices the plan's steps out of the live trie
        (pruning trie nodes that lose their last step) instead of forcing a rebuild.
        """
        runtime = self._subs.pop(name)
        runtime.names.remove(name)
        if not runtime.names:
            del self._runtimes[runtime.keyform]
            if self._trie_root is not None:
                self._splice_out(runtime)

    def subscriptions(self) -> List[str]:
        """The registered subscription names, in registration order."""
        return list(self._subs)

    def subscription_queries(self) -> Dict[str, str]:
        """name -> canonical XPath text, in registration order.

        The canonical form is the plan-interning key, so two banks registered from
        the same pairs intern identically; it is also the serialization the
        snapshot/restore layer (:mod:`repro.service.snapshot`) persists, chosen over
        pickling compiled plans because plans hold closures and a canonical string
        round-trips through ``parse_query`` into an equal plan by construction.
        """
        return {name: runtime.keyform for name, runtime in self._subs.items()}

    def __len__(self) -> int:
        return len(self._subs)

    @property
    def stats_mode(self) -> bool:
        """Whether this bank runs the statistics-accurate engine (``stats=True``)."""
        return self._stats

    def distinct_plan_count(self) -> int:
        """Number of distinct interned plans (= runtimes) serving the subscriptions."""
        return len(self._runtimes)

    def query(self, name: str) -> Query:
        """The query registered under ``name``."""
        return self._subs[name].plan.query

    def plan(self, name: str) -> CompiledQuery:
        """The compiled plan registered under ``name``."""
        return self._subs[name].plan

    # ------------------------------------------------------------------ trie building
    def _sub_slots(self, plan: CompiledQuery) -> Tuple[int, ...]:
        """The slots of a plan that carry per-subscription entries on trie nodes.

        In the stats-accurate mode every step needs per-query record work at its fire
        points.  In match-only mode a *path plan* (a pure chain) needs none: the
        structural fire of its leaf is an exact candidate match, so only the leaf
        slot is registered and the inner steps exist purely as shared trie structure.
        """
        if not self._stats and plan.is_path:
            # slot_count == 1 is the bare-root query, which never matches anything
            return (plan.slot_count - 1,) if plan.slot_count > 1 else ()
        return tuple(range(1, plan.slot_count))

    def _trie(self) -> _TrieNode:
        if self._trie_root is None:
            root = _TrieNode()
            for runtime in self._runtimes.values():
                plan = runtime.plan
                sub_slots = set(self._sub_slots(plan))
                nodes: List[_TrieNode] = [root] * plan.slot_count
                for slot in range(1, plan.slot_count):
                    parent_trie = nodes[plan.parent[slot]]
                    level_checked = plan.axis[slot] != AX_DESC
                    node = parent_trie.get_or_add(level_checked, plan.ntests[slot])
                    nodes[slot] = node
                    if slot in sub_slots:
                        node.subs.append((runtime, slot))
                runtime.trie_nodes = nodes
            root.finalize()
            self._trie_root = root
        return self._trie_root

    def rebuild_trie(self) -> None:
        """Discard the shared trie and rebuild it from scratch.

        This is the pre-incremental maintenance behavior, kept public as the churn
        benchmark's baseline and as the equivalence oracle of the incremental-splice
        property tests (an incrementally maintained trie must be indistinguishable
        from a rebuilt one).
        """
        self._trie_root = None
        self._trie()

    def _splice_in(self, runtime: _Runtime) -> None:
        """Add one plan's steps to the live trie, keeping edge lists finalized."""
        root = self._trie_root
        plan = runtime.plan
        sub_slots = set(self._sub_slots(plan))
        nodes: List[_TrieNode] = [root] * plan.slot_count
        for slot in range(1, plan.slot_count):
            parent_trie = nodes[plan.parent[slot]]
            level_checked = plan.axis[slot] != AX_DESC
            ntest = plan.ntests[slot]
            step_map = parent_trie.child_map if level_checked else parent_trie.desc_map
            node = step_map.get(ntest)
            if node is None:
                node = step_map[ntest] = _TrieNode()
                # a fresh node is born finalized (empty maps and edge lists); only the
                # parent's precomputed edge lists need the new edge
                if level_checked:
                    if ntest == "*":
                        parent_trie.child_wild = node
                    elif ntest == "@*":
                        parent_trie.child_attr_wild = node
                    else:
                        parent_trie.child_concrete.append((ntest, node))
                else:
                    kind = 1 if ntest == "*" else 2 if ntest == "@*" else 0
                    parent_trie.desc_edges.append((kind, ntest, node))
            nodes[slot] = node
            if slot in sub_slots:
                node.subs.append((runtime, slot))
        runtime.trie_nodes = nodes

    def _splice_out(self, runtime: _Runtime) -> None:
        """Remove one plan's steps from the live trie, pruning emptied nodes.

        Slots are visited deepest-first (reversed pre-order), so a trie node that
        loses its last step and has no children is unlinked from its parent before the
        parent itself is considered — emptied chains prune bottom-up along the plan's
        own path.  A node still carrying other plans' steps, or interior to another
        plan's path, is left in place.
        """
        plan = runtime.plan
        nodes = runtime.trie_nodes
        if nodes is None:  # registered after an unregister-forced teardown; no trie
            return
        sub_slots = set(self._sub_slots(plan))
        for slot in range(plan.slot_count - 1, 0, -1):
            node = nodes[slot]
            if slot in sub_slots:
                node.subs.remove((runtime, slot))
            if node.subs or node.child_map or node.desc_map:
                continue
            parent_trie = nodes[plan.parent[slot]]
            level_checked = plan.axis[slot] != AX_DESC
            ntest = plan.ntests[slot]
            if level_checked:
                if parent_trie.child_map.get(ntest) is node:
                    del parent_trie.child_map[ntest]
                    if ntest == "*":
                        parent_trie.child_wild = None
                    elif ntest == "@*":
                        parent_trie.child_attr_wild = None
                    else:
                        parent_trie.child_concrete.remove((ntest, node))
            else:
                if parent_trie.desc_map.get(ntest) is node:
                    del parent_trie.desc_map[ntest]
                    kind = 1 if ntest == "*" else 2 if ntest == "@*" else 0
                    parent_trie.desc_edges.remove((kind, ntest, node))
        runtime.trie_nodes = None

    def trie_size(self) -> int:
        """Number of shared trie nodes (excluding the root).

        With heavy prefix sharing this is far below the total number of query steps:
        ``sum(plan.slot_count - 1 for plan in plans)`` is the unshared upper bound.
        """
        count = 0
        stack = [self._trie()]
        while stack:
            node = stack.pop()
            for step_map in (node.child_map, node.desc_map):
                count += len(step_map)
                stack.extend(step_map.values())
        return count

    def memory_report(self) -> BankMemoryReport:
        """Live modeled-bits accounting for the whole bank.

        Standing bits cover the interned name table (8 bits per character plus
        an id per entry), the shared trie (axis class + node-test id per node)
        and every distinct plan's slot arrays; see
        :class:`BankMemoryReport` for what the peak fields mean per mode.  In
        match-only mode frontier records are *not* modeled — the fast path
        keeps no per-record accounting by design, and its per-document record
        count is bounded by the same structure the stats engine measures — so
        ``peak_document_bits`` covers only the value buffers there, and the
        process-RSS watermark is the backstop for the rest.
        """
        name_bits = _bits(len(self._names) + 2)
        trie_nodes = self.trie_size()
        standing = sum(len(name) * 8 + name_bits for name in self._names)
        standing += trie_nodes * (2 + name_bits)
        peak_doc = 0
        peak_records = 0
        peak_sum = 0
        for runtime in self._runtimes.values():
            plan = runtime.plan
            standing += _plan_standing_bits(plan.slot_count, plan.qnode_bits,
                                            name_bits)
            peak_sum += runtime.lifetime_peak_bits
            if runtime.lifetime_peak_bits > peak_doc:
                peak_doc = runtime.lifetime_peak_bits
            if runtime.lifetime_peak_records > peak_records:
                peak_records = runtime.lifetime_peak_records
        buffer_bits = self._peak_value_chars * 8
        if not self._stats:
            peak_doc = max(peak_doc, buffer_bits)
            peak_sum = max(peak_sum, buffer_bits)
        return BankMemoryReport(
            subscriptions=len(self._subs),
            distinct_plans=len(self._runtimes),
            trie_nodes=trie_nodes,
            standing_bits=standing,
            peak_document_bits=peak_doc,
            peak_frontier_records=peak_records,
            peak_buffer_chars=self._peak_value_chars,
            modeled_bits=standing + peak_sum,
            stats_mode=self._stats,
        )

    def per_subscription_peak_bits(self) -> Dict[str, int]:
        """name -> lifetime Theorem 8.8 peak bits of its plan (stats mode only).

        The soak harness compares these against the static cost-model bound of
        :func:`repro.analysis.costmodel.analyze_query`.  In match-only mode the
        engine keeps no per-plan bit accounting and every peak reads 0.
        """
        return {name: runtime.lifetime_peak_bits
                for name, runtime in self._subs.items()}

    def analyze(self, *, max_depth: int = 32, max_text_chars: int = 256,
                subsumption: bool = True,
                pair_limit: Optional[int] = None):
        """Static-analysis report over the registered subscriptions.

        Per-plan cost facts (``FS(Q)``, fast-path eligibility, the predicted
        Theorem 8.8 memory bound at the stated depth/text assumptions),
        trie-sharing aggregates, and subsumption/duplicate findings.  Returns
        a :class:`repro.analysis.bank.BankAnalysis`; the bank is not mutated.
        """
        from ..analysis.bank import analyze_bank  # late: analysis sits above core

        return analyze_bank(
            self,
            max_depth=max_depth,
            max_text_chars=max_text_chars,
            subsumption=subsumption,
            pair_limit=pair_limit,
        )

    def index_fanout(self, name: str) -> int:
        """How many (query, step) pairs sit on trie nodes reachable by label ``name``.

        Diagnostic counterpart of ``FilterBank.index_fanout``: counts the subscriptions
        of every trie node whose edge label is ``name`` (or a matching wildcard).
        """
        total = 0
        stack = [self._trie()]
        is_attr = name.startswith("@")
        while stack:
            node = stack.pop()
            for step_map in (node.child_map, node.desc_map):
                for ntest, child in step_map.items():
                    if (ntest == name or (ntest == "*" and not is_attr)
                            or (ntest == "@*" and is_attr)):
                        total += len(child.subs)
                    stack.append(child)
        return total

    # ------------------------------------------------------------------ filtering
    def filter_events(self, events: Iterable[Event]) -> BankResult:
        """Feed one document event stream to every subscription (single pass)."""
        return self._filter(event_tokens(events), early_unregister=False)

    def filter_document(self, document: XMLDocument) -> BankResult:
        """Convenience wrapper over :meth:`filter_events`."""
        return self.filter_events(document.events())

    def filter_text(self, text: str) -> BankResult:
        """Filter one document given as XML text, on the zero-copy token pipeline."""
        return self._filter(iter(document_tokens(text)), early_unregister=False)

    def filter_stream(self, chunks: Iterable[Chunk], *,
                      encoding: str = "utf-8") -> BankResult:
        """Filter one document arriving as byte/text chunks, never materializing it."""
        parser = StreamingParser(encoding=encoding)
        return self._filter(parser.parse_tokens(chunks), early_unregister=False)

    def filter_tokens(self, tokens: Iterable[Token], *,
                      early_unregister: bool = False) -> BankResult:
        """Filter one document given as a raw token stream (the lowest-level entry)."""
        return self._filter(iter(tokens), early_unregister=early_unregister)

    def filter_many(self, documents: Iterable[DocumentLike]) -> List[BankResult]:
        """Batch mode with early decision, as in ``FilterBank.filter_many``."""
        results = []
        for document in documents:
            if isinstance(document, XMLDocument):
                tokens = event_tokens(document.events())
            else:
                tokens = event_tokens(document)
            results.append(self._filter(tokens, early_unregister=True))
        return results

    def _filter(self, tokens: Iterator[Token], *, early_unregister: bool) -> BankResult:
        if self._stats:
            return self._run(tokens, early_unregister=early_unregister)
        # the match-only fast path always retires decided runtimes mid-document:
        # there are no statistics whose coverage the early exit could change
        return self._run_fast(tokens)

    # ------------------------------------------------------------------ the hot loop
    def _run(self, tokens: Iterator[Token], *, early_unregister: bool) -> BankResult:
        trie_root = self._trie()
        runtimes = list(self._runtimes.values())
        outcomes: Dict[_Runtime, Optional[bool]] = {rt: None for rt in runtimes}
        decided: set = set()  # runtimes early-unregistered for the current document
        level = 0  # shared document-level counter (pre-event value, as in FilterBank)
        max_level = 0
        events_seen = 0
        high_water = _LevelHighWater()
        in_document = False
        saw_end = False
        completed = False

        text_open: Dict[_Runtime, bool] = {}  # runtimes with an open value buffer
        resolvers: Dict[int, set] = {}  # post-event level -> runtimes to resolve there

        # structural trie state: one frame per open element (plus the document frame);
        # a frame is None (nothing fired at that element) or a tuple
        # (expect, wild, attr_wild, desc_added) where expect maps a node test to the
        # level-checked trie nodes expecting it among the element's direct children
        frames: List[Optional[tuple]] = []
        desc_by_name: Dict[str, dict] = {}  # ntest -> {trie node: live count}
        desc_wild: dict = {}  # live descendant ``*`` instances
        desc_attr_wild: dict = {}  # live descendant ``@*`` instances

        def build_frame(fired: List[_TrieNode]) -> Optional[tuple]:
            return _build_frame(fired, desc_by_name, desc_wild, desc_attr_wild)

        def observe_bits(runtime: _Runtime, observed_level: int) -> None:
            # the Theorem 8.8 bit cost of the runtime's live state at the given level
            # (FrontierMemoryModel.bits, with bits_for memoized) — shared by the
            # per-event observation and the skipped-window high-water observation so
            # the two accounting paths cannot diverge
            stats = runtime.stats
            records = runtime.frontier_size
            chars = runtime.buf_size
            level_bits = _bits(observed_level + 2)
            bits = (records * (runtime.plan.qnode_bits + level_bits
                               + _bits(chars + 2) + 1)
                    + chars * 8 + level_bits)
            if bits > stats.peak_memory_bits:
                stats.peak_memory_bits = bits

        def observe(runtime: _Runtime, observed_level: int) -> None:
            # the filter's per-event _observe, at the post-event level
            stats = runtime.stats
            records = runtime.frontier_size
            if records > stats.peak_frontier_records:
                stats.peak_frontier_records = records
            chars = runtime.buf_size
            if chars > stats.peak_buffer_chars:
                stats.peak_buffer_chars = chars
            observe_bits(runtime, observed_level)

        def touch(runtime: _Runtime) -> None:
            # account for the levels traversed while no event touched this runtime
            # (filter.observe_idle at the skipped window's maximum level)
            if runtime.last_ts < events_seen - 1:
                observe_bits(runtime, high_water.max_since(runtime.last_ts + 1))
            runtime.last_ts = events_seen

        def start_document(runtime: _Runtime) -> None:
            plan = runtime.plan
            runtime.stats = FilterStatistics(events=1)
            runtime.reset()
            root_rec = [0, False, True, None, 0]
            runtime.root_rec = root_rec
            runtime.recs[0].append(root_rec)
            seq = 1
            pending = []
            for child in plan.root_children:
                rec = [1, False, True, [] if plan.is_leaf[child] else None, seq]
                seq += 1
                runtime.recs[child].append(rec)
                pending.append((child, rec))
            if pending:
                runtime.recs_by_level[1] = pending
            runtime.next_seq = seq
            runtime.frontier_size = 1 + len(pending)
            runtime.last_ts = events_seen
            observe(runtime, 1)

        def process_start(runtime: _Runtime, slots: List[int]) -> None:
            plan = runtime.plan
            recs = runtime.recs
            axis = plan.axis
            # phase 1: collect eligible records across all fired slots (the filter
            # scans the whole frontier before inserting, so records born this event
            # never fire in it)
            fires = None
            for slot in slots:
                live = recs[slot]
                if not live:
                    continue
                if axis[slot] == AX_DESC:
                    eligible = [(r[4], slot, r) for r in live if not r[1]]
                else:
                    eligible = [(r[4], slot, r)
                                for r in live if not r[1] and r[0] == level]
                if eligible:
                    fires = eligible if fires is None else fires + eligible
            if fires is None:
                return
            if len(fires) > 1:
                # phase 2 must replay the filter's frontier-list scan order: the order
                # children are inserted decides which parent group resolves first at
                # the matching end event, which is observable through matched flags
                fires.sort()
            touch(runtime)
            stats = runtime.stats
            is_leaf = plan.is_leaf
            insert_level = level + 1
            pending = None
            seq = runtime.next_seq
            inserted = 0
            for _seq, slot, rec in fires:
                stats.candidate_matches += 1
                if is_leaf[slot]:
                    if runtime.ref_count == 0:
                        text_open[runtime] = True
                    runtime.ref_count += 1
                    rec[3].append((level, runtime.buf_size))
                    opens = runtime.leaf_opens.get(level)
                    if opens is None:
                        opens = runtime.leaf_opens[level] = []
                    opens.append((rec, plan.truth[slot]))
                else:
                    if axis[slot] == AX_CHILD:
                        rec[2] = False  # the line 10-11 removal optimization
                        recs[slot].remove(rec)
                        runtime.frontier_size -= 1
                    if pending is None:
                        pending = runtime.recs_by_level.get(insert_level)
                        if pending is None:
                            pending = runtime.recs_by_level[insert_level] = []
                    for child in plan.children[slot]:
                        new_rec = [insert_level, False, True,
                                   [] if is_leaf[child] else None, seq]
                        seq += 1
                        recs[child].append(new_rec)
                        pending.append((child, new_rec))
                        inserted += 1
            runtime.next_seq = seq
            runtime.frontier_size += inserted
            waiting = resolvers.get(level)
            if waiting is None:
                waiting = resolvers[level] = set()
            waiting.add(runtime)
            observe(runtime, insert_level)

        def resolve_children(runtime: _Runtime, post_level: int) -> None:
            # lines 11-29 of endElement: fold finished child records into parents
            entries = runtime.recs_by_level.pop(post_level + 1, None)
            if not entries:
                return
            recs = runtime.recs
            parent_of = runtime.plan.parent
            axis = runtime.plan.axis
            if len(entries) == 1:
                # fast path: one finished record (linear-path queries live here)
                slot, rec = entries[0]
                if not rec[2]:
                    return
                parent = parent_of[slot]
                all_matched = rec[1]
                rec[2] = False
                recs[slot].remove(rec)
                runtime.frontier_size -= 1
                if parent == 0 or axis[parent] == AX_DESC:
                    if all_matched:
                        for parent_rec in recs[parent]:
                            parent_rec[1] = True
                else:
                    fresh = [post_level, all_matched, True, None, runtime.next_seq]
                    runtime.next_seq += 1
                    recs[parent].append(fresh)
                    pending = runtime.recs_by_level.get(post_level)
                    if pending is None:
                        pending = runtime.recs_by_level[post_level] = []
                    pending.append((parent, fresh))
                    runtime.frontier_size += 1
                return
            by_parent: Optional[dict] = None
            for slot, rec in entries:
                if not rec[2]:
                    continue  # removed while its candidate's subtree was open
                parent = parent_of[slot]
                if by_parent is None:
                    by_parent = {}
                group = by_parent.get(parent)
                if group is None:
                    by_parent[parent] = [(slot, rec)]
                else:
                    group.append((slot, rec))
            if by_parent is None:
                return
            for parent, group in by_parent.items():
                all_matched = all(rec[1] for _slot, rec in group)
                for slot, rec in group:
                    rec[2] = False
                    recs[slot].remove(rec)
                runtime.frontier_size -= len(group)
                if parent == 0 or axis[parent] == AX_DESC:
                    if all_matched:
                        for parent_rec in recs[parent]:
                            parent_rec[1] = True
                else:
                    fresh = [post_level, all_matched, True, None, runtime.next_seq]
                    runtime.next_seq += 1
                    recs[parent].append(fresh)
                    pending = runtime.recs_by_level.get(post_level)
                    if pending is None:
                        pending = runtime.recs_by_level[post_level] = []
                    pending.append((parent, fresh))
                    runtime.frontier_size += 1

        def process_end(runtime: _Runtime, post_level: int) -> None:
            touch(runtime)
            stats = runtime.stats
            opens = runtime.leaf_opens.pop(post_level, None)
            if opens:
                for rec, truth in opens:
                    _open_level, start = rec[3].pop()
                    if not rec[1]:
                        stats.real_match_evaluations += 1
                        if truth is None:
                            rec[1] = True
                        else:
                            rec[1] = bool(truth(_slice_from(runtime, start)))
                    runtime.ref_count -= 1
                    if runtime.ref_count <= 0:
                        runtime.ref_count = 0
                        runtime.buf_parts = []
                        runtime.buf_size = 0
                        text_open.pop(runtime, None)
            resolve_children(runtime, post_level)
            observe(runtime, post_level)

        def outcome_known(runtime: _Runtime) -> bool:
            # filter.outcome_so_far: True once every root child has live records and
            # all of them are matched (a matched flag never reverts)
            root_children = runtime.plan.root_children
            if not root_children:
                return False
            recs = runtime.recs
            for child in root_children:
                live = recs[child]
                if not live:
                    return False
                for rec in live:
                    if not rec[1]:
                        return False
            return True

        try:
            for token in tokens:
                events_seen += 1
                kind = token[0]
                if kind == TOK_START:
                    name = token[1]
                    # --- structural fire detection (shared across all queries)
                    fired = None
                    top = frames[-1] if frames else None
                    if top is not None:
                        expect = top[0]
                        if expect is not None:
                            hit = expect.get(name)
                            if hit:
                                fired = list(hit)
                        if name[:1] != "@":
                            if top[1]:
                                fired = top[1] if fired is None else fired + top[1]
                        elif top[2]:
                            fired = top[2] if fired is None else fired + top[2]
                    bucket = desc_by_name.get(name)
                    if bucket:
                        nodes = list(bucket)
                        fired = nodes if fired is None else fired + nodes
                    if name[:1] != "@":
                        if desc_wild:
                            nodes = list(desc_wild)
                            fired = nodes if fired is None else fired + nodes
                    elif desc_attr_wild:
                        nodes = list(desc_attr_wild)
                        fired = nodes if fired is None else fired + nodes
                    # --- per-query fan-out, only at fire points
                    if fired:
                        touched: Dict[_Runtime, List[int]] = {}
                        for node in fired:
                            for runtime, slot in node.subs:
                                slots = touched.get(runtime)
                                if slots is None:
                                    touched[runtime] = [slot]
                                else:
                                    slots.append(slot)
                        for runtime, slots in touched.items():
                            if runtime not in decided:
                                process_start(runtime, slots)
                        frames.append(build_frame(fired))
                    else:
                        frames.append(None)
                    level += 1
                    if level > max_level:
                        max_level = level
                elif kind == TOK_END:
                    post_level = level - 1
                    waiting = resolvers.pop(post_level, None)
                    if waiting:
                        for runtime in waiting:
                            if runtime in decided:
                                continue
                            process_end(runtime, post_level)
                            if early_unregister and outcome_known(runtime):
                                decided.add(runtime)
                                outcomes[runtime] = True
                    if len(frames) > 1:
                        frame = frames.pop()
                        if frame is not None and frame[3] is not None:
                            for bucket, node in frame[3]:
                                count = bucket[node] - 1
                                if count:
                                    bucket[node] = count
                                else:
                                    del bucket[node]
                    level = post_level
                elif kind == TOK_TEXT:
                    if text_open:
                        length = token[3] - token[2]
                        for runtime in list(text_open):
                            if runtime in decided:
                                continue
                            touch(runtime)
                            runtime.buf_parts.append(token)
                            runtime.buf_size += length
                            observe(runtime, level)
                elif kind == TOK_START_DOC:
                    in_document = True
                    level = 0
                    max_level = 0
                    events_seen = 1
                    high_water = _LevelHighWater()
                    decided.clear()
                    text_open.clear()
                    resolvers.clear()
                    desc_by_name.clear()
                    desc_wild.clear()
                    desc_attr_wild.clear()
                    del frames[:]
                    frames.append(build_frame([trie_root]))
                    for runtime in runtimes:
                        outcomes[runtime] = None
                        start_document(runtime)
                    level = 1
                elif kind == TOK_END_DOC:
                    post_level = level - 1
                    for runtime in runtimes:
                        if runtime in decided:
                            runtime.reset()  # mid-document by design; make it clean
                            continue
                        touch(runtime)
                        resolve_children(runtime, post_level)
                        root_rec = runtime.root_rec
                        outcomes[runtime] = (root_rec[1] if root_rec is not None
                                             else False)
                        observe(runtime, post_level)
                    level = post_level
                    in_document = False
                    saw_end = True
                else:  # pragma: no cover - defensive
                    raise TypeError(f"unknown token {token!r}")
                high_water.push(events_seen, level)
            if not saw_end or in_document:
                raise ValueError("event stream did not contain an endDocument event")
            completed = True
        finally:
            if not completed:
                # never leave runtimes mid-document: a truncated stream must not
                # corrupt the next filtering call
                for runtime in runtimes:
                    runtime.reset()

        for runtime in runtimes:
            # per-runtime counters only saw fire points; the shared counters saw all
            runtime.stats.events = events_seen
            runtime.stats.max_level = max_level
            # fold the per-document peaks into the lifetime high-water marks the
            # resource governor reads (``stats`` is replaced at each startDocument)
            rt_stats = runtime.stats
            if rt_stats.peak_memory_bits > runtime.lifetime_peak_bits:
                runtime.lifetime_peak_bits = rt_stats.peak_memory_bits
            if rt_stats.peak_frontier_records > runtime.lifetime_peak_records:
                runtime.lifetime_peak_records = rt_stats.peak_frontier_records
            if rt_stats.peak_buffer_chars > self._peak_value_chars:
                self._peak_value_chars = rt_stats.peak_buffer_chars
        # fan one outcome/statistics object per interned plan out to every name
        # registered under it, in subscription registration order
        matched: List[str] = []
        stats: Dict[str, FilterStatistics] = {}
        for name, runtime in self._subs.items():
            stats[name] = runtime.stats
            if outcomes[runtime]:
                matched.append(name)
        return BankResult(matched=matched, per_query_stats=stats)

    # ------------------------------------------------------------------ the fast path
    def _run_fast(self, tokens: Iterator[Token]) -> BankResult:
        """The match-only hot loop: ``matched`` bits only, no statistics.

        Structural trie dispatch is identical to :meth:`_run`; the per-runtime state
        machine is reduced to what the Boolean outcome depends on, in two tiers:

        * **Path plans** (pure chains — the overwhelmingly common pub/sub shape) keep
          *no frontier records at all*.  Only the chain leaf carries subscription
          entries on the trie (see :meth:`_sub_slots`), because a structural fire of
          the leaf is an exact candidate match of the whole chain.  A universal leaf
          truth decides the outcome at the fire itself; a value test pushes the
          subscription onto a *shared* value-buffer context that is evaluated once
          per closing element — one buffered string for any number of subscriptions
          watching that element.  Per-event per-subscription cost therefore drops to
          O(matched leaf fires).

        * **Branching plans** run the general record machinery.  Records are
          ``[level, matched, alive, opens]`` — no insertion sequence numbers and no
          frontier-scan-order replay (the outcome is order-independent: ``matched``
          accumulates with OR and resolution groups are keyed by parent slot).

        There is no ``FilterStatistics``, no frontier-size or peak accounting, no
        high-water stack.  Per-document runtime state is initialized lazily at the
        runtime's first fire point (a runtime can only be affected at a fire point,
        and the trie guarantees the first relevant one touches it), and a runtime
        whose outcome becomes known mid-document is retired immediately.
        """
        trie_root = self._trie()
        level = 0
        in_document = False
        saw_end = False
        completed = False
        gen = self._generation  # bumped at each startDocument below

        touched: List[_Runtime] = []  # record-plan runtimes initialized this document
        text_open: set = set()  # record-plan runtimes with an open value buffer
        resolvers: Dict[int, set] = {}  # post-event level -> runtimes to resolve

        # the shared value buffer of the path-plan tier: one token list serves every
        # open leaf context; a context remembers its start offset and the
        # subscriptions to evaluate when its element closes
        val_parts: List[Token] = []
        val_size = 0
        val_open = 0  # number of open contexts (gates text buffering)
        val_contexts: Dict[int, list] = {}  # close level -> [(start, entries)]

        frames: List[Optional[tuple]] = []
        desc_by_name: Dict[str, dict] = {}
        desc_wild: dict = {}
        desc_attr_wild: dict = {}

        def build_frame(fired: List[_TrieNode]) -> Optional[tuple]:
            return _build_frame(fired, desc_by_name, desc_wild, desc_attr_wild)

        def fast_start(runtime: _Runtime) -> None:
            # lazy per-document initialization, run at the runtime's first fire point
            plan = runtime.plan
            runtime.doc_gen = gen
            runtime.decided = False
            runtime.outcome = False
            runtime.recs = [[] for _ in range(plan.slot_count)]
            root_rec = [0, False, True, None]
            runtime.root_rec = root_rec
            runtime.recs[0].append(root_rec)
            pending = []
            is_leaf = plan.is_leaf
            for child in plan.root_children:
                rec = [1, False, True, [] if is_leaf[child] else None]
                runtime.recs[child].append(rec)
                pending.append((child, rec))
            runtime.recs_by_level = {1: pending} if pending else {}
            runtime.leaf_opens = {}
            runtime.buf_parts = []
            runtime.buf_size = 0
            runtime.ref_count = 0
            touched.append(runtime)

        def process_start(runtime: _Runtime, slots: List[int]) -> None:
            plan = runtime.plan
            recs = runtime.recs
            axis = plan.axis
            fires = None
            for slot in slots:
                live = recs[slot]
                if not live:
                    continue
                if axis[slot] == AX_DESC:
                    eligible = [(slot, r) for r in live if not r[1]]
                else:
                    eligible = [(slot, r) for r in live if not r[1] and r[0] == level]
                if eligible:
                    fires = eligible if fires is None else fires + eligible
            if fires is None:
                return
            is_leaf = plan.is_leaf
            insert_level = level + 1
            pending = None
            for slot, rec in fires:
                if is_leaf[slot]:
                    if runtime.ref_count == 0:
                        text_open.add(runtime)
                    runtime.ref_count += 1
                    rec[3].append((level, runtime.buf_size))
                    opens = runtime.leaf_opens.get(level)
                    if opens is None:
                        opens = runtime.leaf_opens[level] = []
                    opens.append((rec, plan.truth[slot]))
                else:
                    if axis[slot] == AX_CHILD:
                        rec[2] = False  # the line 10-11 removal optimization
                        recs[slot].remove(rec)
                    if pending is None:
                        pending = runtime.recs_by_level.get(insert_level)
                        if pending is None:
                            pending = runtime.recs_by_level[insert_level] = []
                    for child in plan.children[slot]:
                        new_rec = [insert_level, False, True,
                                   [] if is_leaf[child] else None]
                        recs[child].append(new_rec)
                        pending.append((child, new_rec))
            waiting = resolvers.get(level)
            if waiting is None:
                waiting = resolvers[level] = set()
            waiting.add(runtime)

        def resolve_children(runtime: _Runtime, post_level: int) -> None:
            entries = runtime.recs_by_level.pop(post_level + 1, None)
            if not entries:
                return
            recs = runtime.recs
            parent_of = runtime.plan.parent
            axis = runtime.plan.axis
            if len(entries) == 1:
                slot, rec = entries[0]
                if not rec[2]:
                    return
                parent = parent_of[slot]
                all_matched = rec[1]
                rec[2] = False
                recs[slot].remove(rec)
                if parent == 0 or axis[parent] == AX_DESC:
                    if all_matched:
                        for parent_rec in recs[parent]:
                            parent_rec[1] = True
                else:
                    fresh = [post_level, all_matched, True, None]
                    recs[parent].append(fresh)
                    pending = runtime.recs_by_level.get(post_level)
                    if pending is None:
                        pending = runtime.recs_by_level[post_level] = []
                    pending.append((parent, fresh))
                return
            by_parent: Optional[dict] = None
            for slot, rec in entries:
                if not rec[2]:
                    continue
                parent = parent_of[slot]
                if by_parent is None:
                    by_parent = {}
                group = by_parent.get(parent)
                if group is None:
                    by_parent[parent] = [(slot, rec)]
                else:
                    group.append((slot, rec))
            if by_parent is None:
                return
            for parent, group in by_parent.items():
                all_matched = all(rec[1] for _slot, rec in group)
                for slot, rec in group:
                    rec[2] = False
                    recs[slot].remove(rec)
                if parent == 0 or axis[parent] == AX_DESC:
                    if all_matched:
                        for parent_rec in recs[parent]:
                            parent_rec[1] = True
                else:
                    fresh = [post_level, all_matched, True, None]
                    recs[parent].append(fresh)
                    pending = runtime.recs_by_level.get(post_level)
                    if pending is None:
                        pending = runtime.recs_by_level[post_level] = []
                    pending.append((parent, fresh))

        def process_end(runtime: _Runtime, post_level: int) -> None:
            opens = runtime.leaf_opens.pop(post_level, None)
            if opens:
                for rec, truth in opens:
                    _open_level, start = rec[3].pop()
                    if not rec[1]:
                        if truth is None:
                            rec[1] = True
                        else:
                            rec[1] = bool(truth(_slice_from(runtime, start)))
                    runtime.ref_count -= 1
                    if runtime.ref_count <= 0:
                        runtime.ref_count = 0
                        if runtime.buf_size > self._peak_value_chars:
                            self._peak_value_chars = runtime.buf_size
                        runtime.buf_parts = []
                        runtime.buf_size = 0
                        text_open.discard(runtime)
            resolve_children(runtime, post_level)

        def outcome_known(runtime: _Runtime) -> bool:
            root_children = runtime.plan.root_children
            if not root_children:
                return False
            recs = runtime.recs
            for child in root_children:
                live = recs[child]
                if not live:
                    return False
                for rec in live:
                    if not rec[1]:
                        return False
            return True

        def retire(runtime: _Runtime) -> None:
            # a True outcome is final (matched flags only accumulate with OR); drop
            # the buffers eagerly, everything else is reclaimed at the next lazy init
            runtime.decided = True
            runtime.outcome = True
            if runtime.buf_size > self._peak_value_chars:
                self._peak_value_chars = runtime.buf_size
            runtime.buf_parts = []
            runtime.buf_size = 0
            runtime.ref_count = 0
            text_open.discard(runtime)

        try:
            for token in tokens:
                kind = token[0]
                if kind == TOK_START:
                    name = token[1]
                    fired = None
                    top = frames[-1] if frames else None
                    if top is not None:
                        expect = top[0]
                        if expect is not None:
                            hit = expect.get(name)
                            if hit:
                                fired = list(hit)
                        if name[:1] != "@":
                            if top[1]:
                                fired = top[1] if fired is None else fired + top[1]
                        elif top[2]:
                            fired = top[2] if fired is None else fired + top[2]
                    bucket = desc_by_name.get(name)
                    if bucket:
                        nodes = list(bucket)
                        fired = nodes if fired is None else fired + nodes
                    if name[:1] != "@":
                        if desc_wild:
                            nodes = list(desc_wild)
                            fired = nodes if fired is None else fired + nodes
                    elif desc_attr_wild:
                        nodes = list(desc_attr_wild)
                        fired = nodes if fired is None else fired + nodes
                    if fired:
                        fan_out: Optional[Dict[_Runtime, List[int]]] = None
                        leaf_entries = None  # path-plan value tests opened here
                        for node in fired:
                            for runtime, slot in node.subs:
                                if runtime.doc_gen != gen:
                                    if runtime.plan.is_path:
                                        runtime.doc_gen = gen
                                        runtime.decided = False
                                        runtime.outcome = False
                                    else:
                                        fast_start(runtime)
                                elif runtime.decided:
                                    continue
                                plan = runtime.plan
                                if plan.is_path:
                                    # an exact candidate match of the whole chain
                                    truth = plan.truth[slot]
                                    if truth is None:
                                        runtime.decided = True
                                        runtime.outcome = True
                                    elif leaf_entries is None:
                                        leaf_entries = [(runtime, truth)]
                                    else:
                                        leaf_entries.append((runtime, truth))
                                    continue
                                if fan_out is None:
                                    fan_out = {runtime: [slot]}
                                    continue
                                slots = fan_out.get(runtime)
                                if slots is None:
                                    fan_out[runtime] = [slot]
                                else:
                                    slots.append(slot)
                        if fan_out is not None:
                            for runtime, slots in fan_out.items():
                                process_start(runtime, slots)
                        if leaf_entries is not None:
                            contexts = val_contexts.get(level)
                            if contexts is None:
                                contexts = val_contexts[level] = []
                            contexts.append((val_size, leaf_entries))
                            val_open += 1
                        frames.append(build_frame(fired))
                    else:
                        frames.append(None)
                    level += 1
                elif kind == TOK_END:
                    post_level = level - 1
                    contexts = val_contexts.pop(post_level, None)
                    if contexts:
                        for start, entries in contexts:
                            value = None
                            for runtime, truth in entries:
                                if runtime.decided:
                                    continue
                                if value is None:
                                    value = _slice_parts(val_parts, start)
                                if truth(value):
                                    runtime.decided = True
                                    runtime.outcome = True
                        val_open -= len(contexts)
                        if val_open == 0 and val_parts:
                            # buffer-release point: the only place the shared value
                            # buffer shrinks, so its size here is a running maximum
                            if val_size > self._peak_value_chars:
                                self._peak_value_chars = val_size
                            val_parts = []
                            val_size = 0
                    waiting = resolvers.pop(post_level, None)
                    if waiting:
                        for runtime in waiting:
                            if runtime.decided:
                                continue
                            process_end(runtime, post_level)
                            if outcome_known(runtime):
                                retire(runtime)
                    if len(frames) > 1:
                        frame = frames.pop()
                        if frame is not None and frame[3] is not None:
                            for bucket, node in frame[3]:
                                count = bucket[node] - 1
                                if count:
                                    bucket[node] = count
                                else:
                                    del bucket[node]
                    level = post_level
                elif kind == TOK_TEXT:
                    if val_open:
                        val_parts.append(token)
                        val_size += token[3] - token[2]
                    if text_open:
                        length = token[3] - token[2]
                        for runtime in text_open:
                            runtime.buf_parts.append(token)
                            runtime.buf_size += length
                elif kind == TOK_START_DOC:
                    in_document = True
                    level = 0
                    self._generation += 1
                    gen = self._generation
                    del touched[:]
                    text_open.clear()
                    resolvers.clear()
                    val_parts = []
                    val_size = 0
                    val_open = 0
                    val_contexts.clear()
                    desc_by_name.clear()
                    desc_wild.clear()
                    desc_attr_wild.clear()
                    del frames[:]
                    frames.append(build_frame([trie_root]))
                    level = 1
                elif kind == TOK_END_DOC:
                    post_level = level - 1
                    for runtime in touched:
                        if runtime.decided:
                            continue
                        resolve_children(runtime, post_level)
                        root_rec = runtime.root_rec
                        runtime.outcome = (root_rec[1] if root_rec is not None
                                           else False)
                    level = post_level
                    in_document = False
                    saw_end = True
                else:  # pragma: no cover - defensive
                    raise TypeError(f"unknown token {token!r}")
            if not saw_end or in_document:
                raise ValueError("event stream did not contain an endDocument event")
            completed = True
        finally:
            if not completed:
                # never leave runtimes mid-document: a truncated stream must not
                # corrupt the next filtering call
                for runtime in touched:
                    runtime.reset()
                    runtime.doc_gen = 0
                    runtime.decided = False
                    runtime.outcome = False

        matched = [name for name, runtime in self._subs.items()
                   if runtime.doc_gen == gen and runtime.outcome]
        return BankResult(matched=matched, per_query_stats={})


class MatchOnlyFilterBank(CompiledFilterBank):
    """:class:`CompiledFilterBank` preconfigured for the match-only fast path.

    ``filter_*`` calls report the same matched sets as the stats-accurate engines but
    skip all :class:`~repro.core.filter.FilterStatistics` bookkeeping
    (``per_query_stats`` is empty), track only the ``matched`` bits the Boolean
    outcome depends on, and retire subscriptions mid-document once their outcome is
    decided.
    """

    def __init__(self) -> None:
        super().__init__(stats=False)
