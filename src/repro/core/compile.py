"""Query compilation and the shared prefix-trie filter bank.

The Section 8 filter (``filter.py``) interprets one query tree per event: frontier
records are dataclass instances, node tests are compared with function calls, and every
subscription re-does the name/axis work of every other subscription.  This module is
the compiled counterpart, in two layers:

**Compiled plans** (:class:`CompiledQuery`).  Each query is lowered into a flat,
slot-addressed form: query nodes become integer slots (0 = the query root, pre-order),
axes become integer codes (:data:`AX_CHILD`/:data:`AX_DESC`/:data:`AX_ATTR`), node
tests carry ids interned in a bank-wide name table (compact slot-addressed metadata —
the trie's dispatch dictionaries key on the test *strings*, since event names arrive
as strings), children/parents become tuples of slot ids, and the
leaf value tests become precompiled predicate closures (a comparison against a constant
compiles to one :func:`~repro.xpath.values.compare_atomic` call; anything else falls
back to the symbolic truth-set evaluator, so semantics are untouched).

**The shared prefix trie** (:class:`CompiledFilterBank`).  All registered subscriptions
are merged into one trie keyed by ``(axis class, node test)``: two steps of different
queries share a trie node exactly when they have the same axis class (level-checked
``child``/``attribute`` vs ``descendant``) and the same node test, and their parents
already share.  A common prefix like ``/catalog/product`` is therefore matched against
the document *once* for any number of subscriptions, and work fans out to individual
queries only at the divergence points.  The runtime of the trie is purely structural —
it computes, per element event, the set of trie nodes whose step path matches the
element (a superset of the per-query candidate matches, which additionally depend on
per-query ``matched`` pruning) — and it needs no level arithmetic at all:

* a *level-checked* step instance is stored in the stack frame of the element whose
  candidate match created it, so it can only fire for that element's direct children;
* a *descendant* step instance is registered in a global count map and unregistered
  when its spawning element's frame is popped, so it fires anywhere in the subtree.

Per-query state is touched only when a trie node fires for one of the query's slots
(or when text must be buffered, or children resolved at an end event — both of which
are only possible after a fire).  That state is a faithful, flat re-implementation of
the interpreted filter's frontier dynamics — records are small lists, indexes replace
scans — and it reproduces :class:`~repro.core.filter.FilterStatistics` byte-for-byte,
using the same lazy high-water accounting as the PR-1 indexed bank (the Theorem 8.8
bit cost is nondecreasing in the document level, so observing a skipped window at its
maximum level reproduces the per-event peak exactly).  The interpreted filter stays as
the semantics reference; a hypothesis property test asserts that the compiled engine,
the indexed bank and the naive bank agree on matched sets and full per-query
statistics.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from ..instrument.memory import bits_for
from ..xmlstream.document import XMLDocument
from ..xmlstream.events import (
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
    Text,
)
from ..xmlstream.parse import (
    TOK_END,
    TOK_END_DOC,
    TOK_START,
    TOK_START_DOC,
    TOK_TEXT,
    Chunk,
    StreamingParser,
    Token,
    document_tokens,
)
from ..xpath.ast import Comparison, Constant, NodeRef
from ..xpath.query import ATTRIBUTE, CHILD, DESCENDANT, Query
from ..xpath.truthset import AtomicPredicateTruthSet, truth_set
from ..xpath.values import compare_atomic
from .filter import FilterStatistics, StreamingFilter
from .filterbank import BankResult, _LevelHighWater

#: integer axis codes of the compiled plan
AX_CHILD = 0  # child axis (or an axis-less node): level-checked, removed while open
AX_DESC = 1  # descendant axis: fires at any level inside its scope, never removed
AX_ATTR = 2  # attribute axis: level-checked like child but never removed (filter.py)

_AXIS_CODE = {CHILD: AX_CHILD, None: AX_CHILD, DESCENDANT: AX_DESC, ATTRIBUTE: AX_ATTR}

#: memoized :func:`~repro.instrument.memory.bits_for` — the Theorem 8.8 accounting
#: calls it three times per observation, and a dict probe is ~10x cheaper than the
#: ``math.log2`` round trip while remaining exactly equal by construction.  The cache
#: is size-capped: buffer sizes are unbounded inputs, and a long-lived pub/sub process
#: must not leak one entry per distinct buffer size it ever observes.
_BITS_CACHE: Dict[int, int] = {}
_BITS_CACHE_LIMIT = 65536


def _bits(count: int) -> int:
    cached = _BITS_CACHE.get(count)
    if cached is None:
        cached = bits_for(count)
        if len(_BITS_CACHE) < _BITS_CACHE_LIMIT:
            _BITS_CACHE[count] = cached
    return cached


# --------------------------------------------------------------------------- plans
def _compile_truth(node) -> Optional[Callable[[str], bool]]:
    """Compile the leaf's truth-set membership test into the cheapest exact form.

    ``None`` means the truth set is universal: the record is marked matched without
    materializing the buffered string value at all (the statistics still count the
    evaluation, as the interpreted filter does).  A single comparison of the variable
    against a constant compiles to one ``compare_atomic`` call; everything else falls
    back to the symbolic evaluator, which is semantically authoritative.
    """
    ts = truth_set(node)
    if not isinstance(ts, AtomicPredicateTruthSet):
        return None  # universal: every value belongs
    predicate = ts.predicate
    if isinstance(predicate, Comparison):
        left, right = predicate.left, predicate.right
        op = predicate.op
        if isinstance(left, NodeRef) and isinstance(right, Constant):
            constant = right.value
            return lambda value: compare_atomic(op, value, constant)
        if isinstance(right, NodeRef) and isinstance(left, Constant):
            constant = left.value
            return lambda value: compare_atomic(op, constant, value)
    return ts.contains


class CompiledQuery:
    """A query lowered to flat, slot-addressed arrays (slot 0 is the query root)."""

    __slots__ = (
        "query",
        "slot_count",
        "axis",
        "ntests",
        "ntest_ids",
        "parent",
        "children",
        "is_leaf",
        "truth",
        "root_children",
        "qnode_bits",
    )

    def __init__(self, query: Query, names: Dict[str, int]) -> None:
        StreamingFilter._check_supported(query)
        nodes = query.nodes()  # pre-order, root first
        index = {id(node): slot for slot, node in enumerate(nodes)}
        self.query = query
        self.slot_count = len(nodes)
        self.axis = [AX_CHILD if node.is_root() else _AXIS_CODE[node.axis]
                     for node in nodes]
        self.ntests = [node.ntest for node in nodes]
        self.ntest_ids = [
            -1 if node.ntest is None else names.setdefault(node.ntest, len(names))
            for node in nodes
        ]
        self.parent = [0 if node.parent is None else index[id(node.parent)]
                       for node in nodes]
        self.children = [tuple(index[id(child)] for child in node.children)
                         for node in nodes]
        self.is_leaf = [node.is_leaf() for node in nodes]
        self.truth = [_compile_truth(node) if node.is_leaf() else None
                      for node in nodes]
        self.root_children = self.children[0]
        # FrontierMemoryModel(query_size=max(|Q|, 1)): log(|Q|+1) bits per node ref
        self.qnode_bits = bits_for(max(query.size(), 1) + 1)


def compile_query(query: Query, names: Optional[Dict[str, int]] = None) -> CompiledQuery:
    """Lower one query into its compiled plan (standalone helper for tests/tools)."""
    return CompiledQuery(query, {} if names is None else names)


# --------------------------------------------------------------------------- the trie
class _TrieNode:
    """One shared step of the prefix trie.

    ``child_*`` edges are level-checked steps (``child`` and ``attribute`` axes merge:
    their structural fire condition is identical); ``desc_*`` edges are descendant
    steps.  Wildcard edges are kept apart from concrete ones because ``*`` matches any
    element name and ``@*`` any attribute name.  ``subs`` lists the ``(runtime, slot)``
    pairs mapped onto this trie node.
    """

    __slots__ = ("child_map", "desc_map", "subs",
                 "child_concrete", "child_wild", "child_attr_wild", "desc_edges")

    def __init__(self) -> None:
        self.child_map: Dict[str, _TrieNode] = {}
        self.desc_map: Dict[str, _TrieNode] = {}
        self.subs: List[tuple] = []
        self.child_concrete: List[tuple] = []
        self.child_wild: Optional[_TrieNode] = None
        self.child_attr_wild: Optional[_TrieNode] = None
        self.desc_edges: List[tuple] = []

    def get_or_add(self, level_checked: bool, ntest: str) -> "_TrieNode":
        step_map = self.child_map if level_checked else self.desc_map
        node = step_map.get(ntest)
        if node is None:
            node = step_map[ntest] = _TrieNode()
        return node

    def finalize(self) -> None:
        """Precompute the edge lists the runtime frame builder iterates."""
        self.child_concrete = [(ntest, node) for ntest, node in self.child_map.items()
                               if ntest not in ("*", "@*")]
        self.child_wild = self.child_map.get("*")
        self.child_attr_wild = self.child_map.get("@*")
        # (kind, ntest, node): kind 0 = concrete name bucket, 1 = ``*``, 2 = ``@*``
        self.desc_edges = [
            (1 if ntest == "*" else 2 if ntest == "@*" else 0, ntest, node)
            for ntest, node in self.desc_map.items()
        ]
        for node in self.child_map.values():
            node.finalize()
        for node in self.desc_map.values():
            node.finalize()


# --------------------------------------------------------------------------- runtimes
# record layout: [level, matched, alive, opens, seq]; ``opens`` is the per-record
# stack of (level, buffer offset) pairs for leaf slots and None for internal slots.
# ``seq`` is the frontier insertion sequence number: the interpreted filter scans its
# frontier *list* at each start event, and that scan order is observable — the order
# children are inserted decides which parent group folds first at resolution, which
# can decide a reinserted child-axis record's matched flag.  Processing fires in seq
# order reproduces the scan exactly.
class _Runtime:
    """Per-subscription mutable state (the compiled analogue of a StreamingFilter)."""

    __slots__ = ("name", "plan", "stats", "recs", "frontier_size", "buf_parts",
                 "buf_size", "ref_count", "recs_by_level", "leaf_opens", "last_ts",
                 "root_rec", "next_seq")

    def __init__(self, name: str, plan: CompiledQuery) -> None:
        self.name = name
        self.plan = plan
        self.stats = FilterStatistics()
        self.last_ts = 0
        self.root_rec: Optional[list] = None
        self.reset()

    def reset(self) -> None:
        """Discard in-flight document state, keeping statistics (filter.reset())."""
        self.recs: List[list] = [[] for _ in range(self.plan.slot_count)]
        self.frontier_size = 0
        self.buf_parts: List[Token] = []
        self.buf_size = 0
        self.ref_count = 0
        self.recs_by_level: Dict[int, list] = {}
        self.leaf_opens: Dict[int, list] = {}
        self.next_seq = 0


def _slice_from(runtime: _Runtime, start: int) -> str:
    """The buffered string value from character offset ``start`` (Fig. 20's data)."""
    pieces: List[str] = []
    offset = 0
    for part in runtime.buf_parts:
        begin, end = part[2], part[3]
        length = end - begin
        if offset + length > start:
            if start > offset:
                pieces.append(part[1][begin + (start - offset):end])
            else:
                pieces.append(part[1][begin:end])
        offset += length
    return "".join(pieces)


def event_tokens(events: Iterable[Event]) -> Iterator[Token]:
    """Adapt an event stream to the token representation the compiled engine runs on."""
    for event in events:
        etype = type(event)
        if etype is StartElement:
            yield (TOK_START, event.name)
        elif etype is EndElement:
            yield (TOK_END, event.name)
        elif etype is Text:
            content = event.content
            yield (TOK_TEXT, content, 0, len(content))
        elif etype is StartDocument:
            yield (TOK_START_DOC,)
        elif etype is EndDocument:
            yield (TOK_END_DOC,)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown event {event!r}")


#: anything :meth:`CompiledFilterBank.filter_many` accepts as one document
DocumentLike = Union[XMLDocument, Iterable[Event]]


class CompiledFilterBank:
    """A multi-subscription filter bank running on compiled shared prefix-trie plans.

    API-compatible with :class:`~repro.core.filterbank.FilterBank` (register /
    unregister / filter_events / filter_document / filter_stream / filter_many), plus
    :meth:`filter_text` which runs the zero-copy token pipeline straight off XML text.
    Matched sets and per-query :class:`~repro.core.filter.FilterStatistics` are
    byte-identical to the interpreted engines.
    """

    def __init__(self) -> None:
        self._subs: Dict[str, _Runtime] = {}
        self._names: Dict[str, int] = {}  # interned node-test name ids (plan-wide)
        self._trie_root: Optional[_TrieNode] = None

    # ------------------------------------------------------------------ registration
    def register(self, name: str, query: Query) -> None:
        """Register a subscription under a unique name.

        Raises ``ValueError`` for duplicate names and
        :class:`~repro.core.errors.UnsupportedQueryError` for unsupported queries.
        """
        if name in self._subs:
            raise ValueError(f"a subscription named {name!r} is already registered")
        plan = CompiledQuery(query, self._names)
        self._subs[name] = _Runtime(name, plan)
        self._trie_root = None  # rebuilt lazily before the next run

    def unregister(self, name: str) -> None:
        """Remove a subscription; unknown names raise ``KeyError``."""
        del self._subs[name]
        self._trie_root = None

    def subscriptions(self) -> List[str]:
        """The registered subscription names, in registration order."""
        return list(self._subs)

    def __len__(self) -> int:
        return len(self._subs)

    def query(self, name: str) -> Query:
        """The query registered under ``name``."""
        return self._subs[name].plan.query

    def plan(self, name: str) -> CompiledQuery:
        """The compiled plan registered under ``name``."""
        return self._subs[name].plan

    # ------------------------------------------------------------------ trie building
    def _trie(self) -> _TrieNode:
        if self._trie_root is None:
            root = _TrieNode()
            for runtime in self._subs.values():
                plan = runtime.plan
                nodes: List[_TrieNode] = [root] * plan.slot_count
                for slot in range(1, plan.slot_count):
                    parent_trie = nodes[plan.parent[slot]]
                    level_checked = plan.axis[slot] != AX_DESC
                    node = parent_trie.get_or_add(level_checked, plan.ntests[slot])
                    nodes[slot] = node
                    node.subs.append((runtime, slot))
            root.finalize()
            self._trie_root = root
        return self._trie_root

    def trie_size(self) -> int:
        """Number of shared trie nodes (excluding the root).

        With heavy prefix sharing this is far below the total number of query steps:
        ``sum(plan.slot_count - 1 for plan in plans)`` is the unshared upper bound.
        """
        count = 0
        stack = [self._trie()]
        while stack:
            node = stack.pop()
            for step_map in (node.child_map, node.desc_map):
                count += len(step_map)
                stack.extend(step_map.values())
        return count

    def index_fanout(self, name: str) -> int:
        """How many (query, step) pairs sit on trie nodes reachable by label ``name``.

        Diagnostic counterpart of ``FilterBank.index_fanout``: counts the subscriptions
        of every trie node whose edge label is ``name`` (or a matching wildcard).
        """
        total = 0
        stack = [self._trie()]
        is_attr = name.startswith("@")
        while stack:
            node = stack.pop()
            for step_map in (node.child_map, node.desc_map):
                for ntest, child in step_map.items():
                    if (ntest == name or (ntest == "*" and not is_attr)
                            or (ntest == "@*" and is_attr)):
                        total += len(child.subs)
                    stack.append(child)
        return total

    # ------------------------------------------------------------------ filtering
    def filter_events(self, events: Iterable[Event]) -> BankResult:
        """Feed one document event stream to every subscription (single pass)."""
        return self._run(event_tokens(events), early_unregister=False)

    def filter_document(self, document: XMLDocument) -> BankResult:
        """Convenience wrapper over :meth:`filter_events`."""
        return self.filter_events(document.events())

    def filter_text(self, text: str) -> BankResult:
        """Filter one document given as XML text, on the zero-copy token pipeline."""
        return self._run(iter(document_tokens(text)), early_unregister=False)

    def filter_stream(self, chunks: Iterable[Chunk], *,
                      encoding: str = "utf-8") -> BankResult:
        """Filter one document arriving as byte/text chunks, never materializing it."""
        parser = StreamingParser(encoding=encoding)
        return self._run(parser.parse_tokens(chunks), early_unregister=False)

    def filter_tokens(self, tokens: Iterable[Token]) -> BankResult:
        """Filter one document given as a raw token stream (the lowest-level entry)."""
        return self._run(iter(tokens), early_unregister=False)

    def filter_many(self, documents: Iterable[DocumentLike]) -> List[BankResult]:
        """Batch mode with early decision, as in ``FilterBank.filter_many``."""
        results = []
        for document in documents:
            if isinstance(document, XMLDocument):
                tokens = event_tokens(document.events())
            else:
                tokens = event_tokens(document)
            results.append(self._run(tokens, early_unregister=True))
        return results

    # ------------------------------------------------------------------ the hot loop
    def _run(self, tokens: Iterator[Token], *, early_unregister: bool) -> BankResult:
        trie_root = self._trie()
        runtimes = list(self._subs.values())
        outcomes: Dict[str, Optional[bool]] = {rt.name: None for rt in runtimes}
        decided: set = set()  # runtimes early-unregistered for the current document
        level = 0  # shared document-level counter (pre-event value, as in FilterBank)
        max_level = 0
        events_seen = 0
        high_water = _LevelHighWater()
        in_document = False
        saw_end = False
        completed = False

        text_open: Dict[_Runtime, bool] = {}  # runtimes with an open value buffer
        resolvers: Dict[int, set] = {}  # post-event level -> runtimes to resolve there

        # structural trie state: one frame per open element (plus the document frame);
        # a frame is None (nothing fired at that element) or a tuple
        # (expect, wild, attr_wild, desc_added) where expect maps a node test to the
        # level-checked trie nodes expecting it among the element's direct children
        frames: List[Optional[tuple]] = []
        desc_by_name: Dict[str, dict] = {}  # ntest -> {trie node: live count}
        desc_wild: dict = {}  # live descendant ``*`` instances
        desc_attr_wild: dict = {}  # live descendant ``@*`` instances

        def build_frame(fired: List[_TrieNode]) -> Optional[tuple]:
            expect = None
            wild = None
            attr_wild = None
            desc_added = None
            for node in fired:
                if node.child_concrete:
                    if expect is None:
                        expect = {}
                    for ntest, child in node.child_concrete:
                        bucket = expect.get(ntest)
                        if bucket is None:
                            expect[ntest] = [child]
                        else:
                            bucket.append(child)
                if node.child_wild is not None:
                    if wild is None:
                        wild = []
                    wild.append(node.child_wild)
                if node.child_attr_wild is not None:
                    if attr_wild is None:
                        attr_wild = []
                    attr_wild.append(node.child_attr_wild)
                if node.desc_edges:
                    if desc_added is None:
                        desc_added = []
                    for kind, ntest, child in node.desc_edges:
                        if kind == 0:
                            bucket = desc_by_name.get(ntest)
                            if bucket is None:
                                bucket = desc_by_name[ntest] = {}
                        elif kind == 1:
                            bucket = desc_wild
                        else:
                            bucket = desc_attr_wild
                        bucket[child] = bucket.get(child, 0) + 1
                        desc_added.append((bucket, child))
            if expect is None and wild is None and attr_wild is None \
                    and desc_added is None:
                return None
            return (expect, wild, attr_wild, desc_added)

        def observe_bits(runtime: _Runtime, observed_level: int) -> None:
            # the Theorem 8.8 bit cost of the runtime's live state at the given level
            # (FrontierMemoryModel.bits, with bits_for memoized) — shared by the
            # per-event observation and the skipped-window high-water observation so
            # the two accounting paths cannot diverge
            stats = runtime.stats
            records = runtime.frontier_size
            chars = runtime.buf_size
            level_bits = _bits(observed_level + 2)
            bits = (records * (runtime.plan.qnode_bits + level_bits
                               + _bits(chars + 2) + 1)
                    + chars * 8 + level_bits)
            if bits > stats.peak_memory_bits:
                stats.peak_memory_bits = bits

        def observe(runtime: _Runtime, observed_level: int) -> None:
            # the filter's per-event _observe, at the post-event level
            stats = runtime.stats
            records = runtime.frontier_size
            if records > stats.peak_frontier_records:
                stats.peak_frontier_records = records
            chars = runtime.buf_size
            if chars > stats.peak_buffer_chars:
                stats.peak_buffer_chars = chars
            observe_bits(runtime, observed_level)

        def touch(runtime: _Runtime) -> None:
            # account for the levels traversed while no event touched this runtime
            # (filter.observe_idle at the skipped window's maximum level)
            if runtime.last_ts < events_seen - 1:
                observe_bits(runtime, high_water.max_since(runtime.last_ts + 1))
            runtime.last_ts = events_seen

        def start_document(runtime: _Runtime) -> None:
            plan = runtime.plan
            runtime.stats = FilterStatistics(events=1)
            runtime.reset()
            root_rec = [0, False, True, None, 0]
            runtime.root_rec = root_rec
            runtime.recs[0].append(root_rec)
            seq = 1
            pending = []
            for child in plan.root_children:
                rec = [1, False, True, [] if plan.is_leaf[child] else None, seq]
                seq += 1
                runtime.recs[child].append(rec)
                pending.append((child, rec))
            if pending:
                runtime.recs_by_level[1] = pending
            runtime.next_seq = seq
            runtime.frontier_size = 1 + len(pending)
            runtime.last_ts = events_seen
            observe(runtime, 1)

        def process_start(runtime: _Runtime, slots: List[int]) -> None:
            plan = runtime.plan
            recs = runtime.recs
            axis = plan.axis
            # phase 1: collect eligible records across all fired slots (the filter
            # scans the whole frontier before inserting, so records born this event
            # never fire in it)
            fires = None
            for slot in slots:
                live = recs[slot]
                if not live:
                    continue
                if axis[slot] == AX_DESC:
                    eligible = [(r[4], slot, r) for r in live if not r[1]]
                else:
                    eligible = [(r[4], slot, r)
                                for r in live if not r[1] and r[0] == level]
                if eligible:
                    fires = eligible if fires is None else fires + eligible
            if fires is None:
                return
            if len(fires) > 1:
                # phase 2 must replay the filter's frontier-list scan order: the order
                # children are inserted decides which parent group resolves first at
                # the matching end event, which is observable through matched flags
                fires.sort()
            touch(runtime)
            stats = runtime.stats
            is_leaf = plan.is_leaf
            insert_level = level + 1
            pending = None
            seq = runtime.next_seq
            inserted = 0
            for _seq, slot, rec in fires:
                stats.candidate_matches += 1
                if is_leaf[slot]:
                    if runtime.ref_count == 0:
                        text_open[runtime] = True
                    runtime.ref_count += 1
                    rec[3].append((level, runtime.buf_size))
                    opens = runtime.leaf_opens.get(level)
                    if opens is None:
                        opens = runtime.leaf_opens[level] = []
                    opens.append((rec, plan.truth[slot]))
                else:
                    if axis[slot] == AX_CHILD:
                        rec[2] = False  # the line 10-11 removal optimization
                        recs[slot].remove(rec)
                        runtime.frontier_size -= 1
                    if pending is None:
                        pending = runtime.recs_by_level.get(insert_level)
                        if pending is None:
                            pending = runtime.recs_by_level[insert_level] = []
                    for child in plan.children[slot]:
                        new_rec = [insert_level, False, True,
                                   [] if is_leaf[child] else None, seq]
                        seq += 1
                        recs[child].append(new_rec)
                        pending.append((child, new_rec))
                        inserted += 1
            runtime.next_seq = seq
            runtime.frontier_size += inserted
            waiting = resolvers.get(level)
            if waiting is None:
                waiting = resolvers[level] = set()
            waiting.add(runtime)
            observe(runtime, insert_level)

        def resolve_children(runtime: _Runtime, post_level: int) -> None:
            # lines 11-29 of endElement: fold finished child records into parents
            entries = runtime.recs_by_level.pop(post_level + 1, None)
            if not entries:
                return
            recs = runtime.recs
            parent_of = runtime.plan.parent
            axis = runtime.plan.axis
            if len(entries) == 1:
                # fast path: one finished record (linear-path queries live here)
                slot, rec = entries[0]
                if not rec[2]:
                    return
                parent = parent_of[slot]
                all_matched = rec[1]
                rec[2] = False
                recs[slot].remove(rec)
                runtime.frontier_size -= 1
                if parent == 0 or axis[parent] == AX_DESC:
                    if all_matched:
                        for parent_rec in recs[parent]:
                            parent_rec[1] = True
                else:
                    fresh = [post_level, all_matched, True, None, runtime.next_seq]
                    runtime.next_seq += 1
                    recs[parent].append(fresh)
                    pending = runtime.recs_by_level.get(post_level)
                    if pending is None:
                        pending = runtime.recs_by_level[post_level] = []
                    pending.append((parent, fresh))
                    runtime.frontier_size += 1
                return
            by_parent: Optional[dict] = None
            for slot, rec in entries:
                if not rec[2]:
                    continue  # removed while its candidate's subtree was open
                parent = parent_of[slot]
                if by_parent is None:
                    by_parent = {}
                group = by_parent.get(parent)
                if group is None:
                    by_parent[parent] = [(slot, rec)]
                else:
                    group.append((slot, rec))
            if by_parent is None:
                return
            for parent, group in by_parent.items():
                all_matched = all(rec[1] for _slot, rec in group)
                for slot, rec in group:
                    rec[2] = False
                    recs[slot].remove(rec)
                runtime.frontier_size -= len(group)
                if parent == 0 or axis[parent] == AX_DESC:
                    if all_matched:
                        for parent_rec in recs[parent]:
                            parent_rec[1] = True
                else:
                    fresh = [post_level, all_matched, True, None, runtime.next_seq]
                    runtime.next_seq += 1
                    recs[parent].append(fresh)
                    pending = runtime.recs_by_level.get(post_level)
                    if pending is None:
                        pending = runtime.recs_by_level[post_level] = []
                    pending.append((parent, fresh))
                    runtime.frontier_size += 1

        def process_end(runtime: _Runtime, post_level: int) -> None:
            touch(runtime)
            stats = runtime.stats
            opens = runtime.leaf_opens.pop(post_level, None)
            if opens:
                for rec, truth in opens:
                    _open_level, start = rec[3].pop()
                    if not rec[1]:
                        stats.real_match_evaluations += 1
                        if truth is None:
                            rec[1] = True
                        else:
                            rec[1] = bool(truth(_slice_from(runtime, start)))
                    runtime.ref_count -= 1
                    if runtime.ref_count <= 0:
                        runtime.ref_count = 0
                        runtime.buf_parts = []
                        runtime.buf_size = 0
                        text_open.pop(runtime, None)
            resolve_children(runtime, post_level)
            observe(runtime, post_level)

        def outcome_known(runtime: _Runtime) -> bool:
            # filter.outcome_so_far: True once every root child has live records and
            # all of them are matched (a matched flag never reverts)
            root_children = runtime.plan.root_children
            if not root_children:
                return False
            recs = runtime.recs
            for child in root_children:
                live = recs[child]
                if not live:
                    return False
                for rec in live:
                    if not rec[1]:
                        return False
            return True

        try:
            for token in tokens:
                events_seen += 1
                kind = token[0]
                if kind == TOK_START:
                    name = token[1]
                    # --- structural fire detection (shared across all queries)
                    fired = None
                    top = frames[-1] if frames else None
                    if top is not None:
                        expect = top[0]
                        if expect is not None:
                            hit = expect.get(name)
                            if hit:
                                fired = list(hit)
                        if name[:1] != "@":
                            if top[1]:
                                fired = top[1] if fired is None else fired + top[1]
                        elif top[2]:
                            fired = top[2] if fired is None else fired + top[2]
                    bucket = desc_by_name.get(name)
                    if bucket:
                        nodes = list(bucket)
                        fired = nodes if fired is None else fired + nodes
                    if name[:1] != "@":
                        if desc_wild:
                            nodes = list(desc_wild)
                            fired = nodes if fired is None else fired + nodes
                    elif desc_attr_wild:
                        nodes = list(desc_attr_wild)
                        fired = nodes if fired is None else fired + nodes
                    # --- per-query fan-out, only at fire points
                    if fired:
                        touched: Dict[_Runtime, List[int]] = {}
                        for node in fired:
                            for runtime, slot in node.subs:
                                slots = touched.get(runtime)
                                if slots is None:
                                    touched[runtime] = [slot]
                                else:
                                    slots.append(slot)
                        for runtime, slots in touched.items():
                            if runtime not in decided:
                                process_start(runtime, slots)
                        frames.append(build_frame(fired))
                    else:
                        frames.append(None)
                    level += 1
                    if level > max_level:
                        max_level = level
                elif kind == TOK_END:
                    post_level = level - 1
                    waiting = resolvers.pop(post_level, None)
                    if waiting:
                        for runtime in waiting:
                            if runtime in decided:
                                continue
                            process_end(runtime, post_level)
                            if early_unregister and outcome_known(runtime):
                                decided.add(runtime)
                                outcomes[runtime.name] = True
                    if len(frames) > 1:
                        frame = frames.pop()
                        if frame is not None and frame[3] is not None:
                            for bucket, node in frame[3]:
                                count = bucket[node] - 1
                                if count:
                                    bucket[node] = count
                                else:
                                    del bucket[node]
                    level = post_level
                elif kind == TOK_TEXT:
                    if text_open:
                        length = token[3] - token[2]
                        for runtime in list(text_open):
                            if runtime in decided:
                                continue
                            touch(runtime)
                            runtime.buf_parts.append(token)
                            runtime.buf_size += length
                            observe(runtime, level)
                elif kind == TOK_START_DOC:
                    in_document = True
                    level = 0
                    max_level = 0
                    events_seen = 1
                    high_water = _LevelHighWater()
                    decided.clear()
                    text_open.clear()
                    resolvers.clear()
                    desc_by_name.clear()
                    desc_wild.clear()
                    desc_attr_wild.clear()
                    del frames[:]
                    frames.append(build_frame([trie_root]))
                    for runtime in runtimes:
                        outcomes[runtime.name] = None
                        start_document(runtime)
                    level = 1
                elif kind == TOK_END_DOC:
                    post_level = level - 1
                    for runtime in runtimes:
                        if runtime in decided:
                            runtime.reset()  # mid-document by design; make it clean
                            continue
                        touch(runtime)
                        resolve_children(runtime, post_level)
                        root_rec = runtime.root_rec
                        outcomes[runtime.name] = (root_rec[1] if root_rec is not None
                                                  else False)
                        observe(runtime, post_level)
                    level = post_level
                    in_document = False
                    saw_end = True
                else:  # pragma: no cover - defensive
                    raise TypeError(f"unknown token {token!r}")
                high_water.push(events_seen, level)
            if not saw_end or in_document:
                raise ValueError("event stream did not contain an endDocument event")
            completed = True
        finally:
            if not completed:
                # never leave runtimes mid-document: a truncated stream must not
                # corrupt the next filtering call
                for runtime in runtimes:
                    runtime.reset()

        matched: List[str] = []
        stats: Dict[str, FilterStatistics] = {}
        for runtime in runtimes:
            # per-runtime counters only saw fire points; the shared counters saw all
            runtime.stats.events = events_seen
            runtime.stats.max_level = max_level
            stats[runtime.name] = runtime.stats
            if outcomes[runtime.name]:
                matched.append(runtime.name)
        return BankResult(matched=matched, per_query_stats=stats)
