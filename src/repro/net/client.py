"""The asyncio client library of the TCP pub/sub front end.

:class:`WireClient` speaks the framed protocol of :mod:`repro.net.protocol`
against a :class:`~repro.net.server.WireServer`.  One background task reads the
socket and demultiplexes: ``ack``/``error`` frames resolve the pending request
they correlate to (by ``seq``), ``match`` frames land on a notification queue
exposed as the :meth:`WireClient.notifications` async iterator — so match pushes
never wait behind request/response traffic and vice versa.

The match queue is bounded and lossy-oldest, mirroring the service's session
delivery queues: a consumer that stops calling :meth:`WireClient.next_match`
must not grow client memory without limit, so on overflow the oldest unread
match is dropped and counted in :attr:`WireClient.dropped_matches` (consumers
that keep up never lose anything; the socket reader never blocks on delivery).

Pipelining is the point of the design: :meth:`submit` writes a publish frame and
returns a future *without* waiting for the ack, so a burst goes out back to back
and the server's ingest batching coalesces it (:meth:`publish_many` is the
convenience wrapper: submit all, drain once, gather).  :meth:`publish` is the
request-response form — await each ack before the next send — and exists mostly
as the slow baseline the wire benchmark compares against.

Reconnecting after a server restart from a snapshot is plain ``connect`` with
the old ``client_id``: the server adopts the restored session and the handshake
ack reports ``resumed`` plus the still-live subscription names.

Durable delivery: the client acknowledges consumed matches with fire-and-forget
``cursor`` frames (automatic by default — every match handed to the consumer by
:meth:`WireClient.next_match` advances and acks the cursor; pass
``auto_ack=False`` to call :meth:`WireClient.ack` yourself at transaction
boundaries).  After a connection dies, :meth:`WireClient.reconnect`
re-establishes it *in place* with exponential backoff plus jitter and capped
retries, adopting the same session: the handshake ack carries the server-side
cursor, re-deliveries arrive flagged :attr:`WireMatch.duplicate`, and matches
already received but not yet consumed are preserved across the swap.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import random
from dataclasses import dataclass
from typing import AsyncIterator, Dict, List, Optional, Tuple, Union

from . import protocol
from .protocol import MAX_FRAME, encode_frame, read_frame


def _backoff_delay(attempt: int, base: float, cap: float,
                   jitter: float) -> float:
    """Exponential backoff with multiplicative jitter (attempt counts from 0).

    Jitter de-synchronizes a fleet of clients all reconnecting to a restarted
    server: without it every retry wave lands at the same instant.
    """
    delay = min(cap, base * (2 ** attempt))
    if jitter > 0:
        delay *= 1.0 + jitter * random.random()
    return delay


class WireError(Exception):
    """Base class of everything this module raises."""


class ConnectionClosedError(WireError):
    """The connection ended (or died) with requests still outstanding."""


class RemoteError(WireError):
    """An ``error`` frame from the server, re-raised at the awaiting caller.

    ``error_type`` carries the server-side exception class name (e.g.
    ``XMLParseError``, ``UnsupportedQueryError``) so callers can branch without
    string-matching the message.
    """

    def __init__(self, error_type: str, message: str, header: dict) -> None:
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.message = message
        self.header = header


class OverloadedError(WireError):
    """An ``overloaded`` frame: the server's governor rejected the request.

    Retryable by contract — the rejected publish (or hello) had no effect on
    the server, and ``retry_after`` is its hint in seconds for when to try
    again.  :meth:`WireClient.connect` and :meth:`WireClient.reconnect` honor
    the hint automatically in their backoff loops; a rejected publish is
    raised at its awaiting caller, which retries (or sheds) at its own pace.
    """

    def __init__(self, message: str, *, retry_after: float = 1.0,
                 header: Optional[dict] = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after
        self.header = header or {}


@dataclass(frozen=True)
class WireMatch:
    """One pushed match notification."""

    document_id: int  #: service-wide publish sequence number of the document
    matched: Tuple[str, ...]  #: this client's local subscription names
    #: True for an at-least-once re-delivery after crash recovery: the match
    #: may have been delivered before — idempotent consumers branch on this
    duplicate: bool = False


@dataclass(frozen=True)
class WirePublishResult:
    """One acknowledged publish."""

    document_id: int  #: service-wide publish sequence number
    matched: Tuple[str, ...]  #: matched subscriptions as global ``client:name`` ids


#: end-of-stream sentinel on the match queue
_EOS = object()


class WireClient:
    """One connection to a wire server.  Create with :meth:`connect`."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, *, max_frame: int,
                 max_pending_matches: int = 1024,
                 auto_ack: bool = True) -> None:
        self._reader = reader
        self._writer = writer
        self._max_frame = max_frame
        self._auto_ack = auto_ack
        self._host: Optional[str] = None  # set by connect(); reconnect() needs it
        self._port: Optional[int] = None
        self.cursor = 0  #: highest document id acked (locally or by the server)
        self._seq = itertools.count(1)
        # the server allows one open stream per connection, so stream send
        # phases are serialized here; other requests interleave freely
        self._stream_lock = asyncio.Lock()
        #: seq -> ("raw"|"pub", future) or ("stream", future, partial results)
        self._pending: Dict[int, tuple] = {}
        # bounded + lossy-oldest, like the service's session delivery queues:
        # an abandoned consumer must not let pushed matches grow without limit
        self._matches: asyncio.Queue = asyncio.Queue(
            maxsize=max(1, max_pending_matches))
        self.dropped_matches = 0  #: matches dropped because the queue was full
        self._reader_task: Optional[asyncio.Task] = None
        self._client_id: Optional[str] = None
        self._resumed = False
        self._server_subscriptions: List[str] = []
        self._closed = False
        #: True once the server pushed an eviction notice: the governor shed
        #: this session for staying pinned past its stall grace.  The socket
        #: closes right after; reconnect() resumes from the durable cursor
        self.evicted = False

    # ------------------------------------------------------------------ lifecycle
    @classmethod
    async def connect(cls, host: str, port: int, *,
                      client_id: Optional[str] = None,
                      max_frame: int = MAX_FRAME,
                      max_pending_matches: int = 1024,
                      auto_ack: bool = True,
                      retries: int = 0, backoff_base: float = 0.05,
                      backoff_max: float = 2.0,
                      jitter: float = 0.5) -> "WireClient":
        """Open a connection and complete the ``hello`` handshake.

        ``client_id`` names the session: pass the previous id after a server
        restart to adopt the session the snapshot restored (check
        :attr:`resumed` and :attr:`server_subscriptions` afterwards); ``None``
        lets the server assign a fresh one.  ``max_pending_matches`` bounds the
        pushed-match queue; on overflow the oldest unread match is dropped and
        counted in :attr:`dropped_matches`.  ``auto_ack`` acknowledges each
        match as :meth:`next_match` hands it to the consumer (see
        :meth:`ack`).  ``retries`` > 0 retries a refused/failed connection
        that many times with exponential backoff (``backoff_base`` doubling up
        to ``backoff_max`` seconds, times ``1 + jitter*random``) — the knob
        that makes connecting to a still-restarting server a wait, not a
        crash.  A typed server *rejection* (:class:`RemoteError`, e.g. a busy
        session) is never retried: the server answered; asking again louder
        would not change it.
        """
        attempt = 0
        while True:
            try:
                reader, writer, header = await cls._hello(
                    host, port, client_id, max_frame)
                break
            except OverloadedError as exc:
                # retryable by contract, and the server said when: wait at
                # least its retry_after hint (backoff still applies on top
                # so repeated rejections keep de-synchronizing the fleet)
                if attempt >= retries:
                    raise
                await asyncio.sleep(max(exc.retry_after, _backoff_delay(
                    attempt, backoff_base, backoff_max, jitter)))
                attempt += 1
            except (ConnectionError, OSError, ConnectionClosedError):
                if attempt >= retries:
                    raise
                await asyncio.sleep(_backoff_delay(
                    attempt, backoff_base, backoff_max, jitter))
                attempt += 1
        client = cls(reader, writer, max_frame=max_frame,
                     max_pending_matches=max_pending_matches,
                     auto_ack=auto_ack)
        client._host, client._port = host, port
        client._apply_hello(header)
        client._reader_task = asyncio.get_running_loop().create_task(
            client._read_loop(), name="wire-client-reader")
        return client

    @staticmethod
    async def _hello(host: str, port: int, client_id: Optional[str],
                     max_frame: int) -> tuple:
        """One connection attempt: open the socket, run the handshake."""
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(encode_frame({"type": protocol.HELLO, "seq": 0,
                                       "client": client_id},
                                      max_frame=max_frame))
            await writer.drain()
            frame = await read_frame(reader, max_frame=max_frame)
        except Exception:
            writer.close()
            raise
        if frame is None:
            writer.close()
            raise ConnectionClosedError("server closed during the handshake")
        header, _body = frame
        if header["type"] == protocol.ERROR:
            writer.close()
            raise RemoteError(header.get("error", "?"),
                              header.get("message", ""), header)
        if header["type"] == protocol.OVERLOADED:
            writer.close()
            raise _overloaded_error(header)
        return reader, writer, header

    def _apply_hello(self, header: dict) -> None:
        self._client_id = header["client"]
        self._resumed = bool(header.get("resumed"))
        self._server_subscriptions = list(header.get("subscriptions", []))
        server_cursor = header.get("cursor")
        if isinstance(server_cursor, int) and server_cursor > self.cursor:
            self.cursor = server_cursor

    @property
    def client_id(self) -> str:
        """The session id the server assigned (or adopted)."""
        return self._client_id

    @property
    def resumed(self) -> bool:
        """Whether the handshake adopted an existing (restored) session."""
        return self._resumed

    @property
    def server_subscriptions(self) -> List[str]:
        """Local subscription names live on the session at handshake time."""
        return list(self._server_subscriptions)

    async def close(self) -> None:
        """Close the connection (idempotent).  Outstanding requests fail."""
        if self._closed:
            return
        self._closed = True
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except Exception:
            pass
        if self._reader_task is not None:
            await self._reader_task

    async def __aenter__(self) -> "WireClient":
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.close()

    async def reconnect(self, *, retries: int = 8,
                        backoff_base: float = 0.05, backoff_max: float = 2.0,
                        jitter: float = 0.5) -> None:
        """Re-establish a dead connection in place, adopting the same session.

        Tears down the old transport (outstanding request futures fail with
        :class:`ConnectionClosedError` — pipelined publishes must be
        re-submitted; on a durable server their documents are in the WAL and
        their matches will be re-delivered), then dials again with exponential
        backoff + jitter, capped at ``retries`` attempts, sending ``hello``
        with the original client id.  On success the client is live again:
        :attr:`cursor` reflects the server's acked position, matches received
        before the drop but not yet consumed are preserved, and re-deliveries
        above the cursor arrive flagged :attr:`WireMatch.duplicate`.  The
        final error is re-raised when every retry fails.  Unlike
        :meth:`connect`, a ``SessionBusyError`` rejection *is* retried here:
        the "live" connection holding the session is this client's own dead
        transport, which the server reaps within a scheduling beat — every
        other typed rejection is raised immediately, unretried.
        """
        if self._host is None or self._port is None:
            raise WireError("reconnect() needs a client created by connect()")
        self._closed = True
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except Exception:
            pass
        if self._reader_task is not None:
            await self._reader_task  # fails outstanding requests, queues EOS
        attempt = 0
        while True:
            try:
                reader, writer, header = await self._hello(
                    self._host, self._port, self._client_id, self._max_frame)
                break
            except RemoteError as exc:
                # our own dead transport still holds the session until the
                # server reaps it — that busy answer is transient, retry it
                if exc.error_type != "SessionBusyError" or attempt >= retries:
                    raise
                await asyncio.sleep(_backoff_delay(
                    attempt, backoff_base, backoff_max, jitter))
                attempt += 1
            except OverloadedError as exc:
                # an overloaded rejection is transient too; honor the server's
                # retry_after hint (adoption of an existing session is never
                # rejected, so this only fires when the session is truly gone)
                if attempt >= retries:
                    raise
                await asyncio.sleep(max(exc.retry_after, _backoff_delay(
                    attempt, backoff_base, backoff_max, jitter)))
                attempt += 1
            except (ConnectionError, OSError, ConnectionClosedError):
                if attempt >= retries:
                    raise
                await asyncio.sleep(_backoff_delay(
                    attempt, backoff_base, backoff_max, jitter))
                attempt += 1
        self._reader, self._writer = reader, writer
        # drop the EOS sentinels the dead connection queued (consumers must
        # not see a spurious close) while keeping every unconsumed match
        backlog = []
        while not self._matches.empty():
            item = self._matches.get_nowait()
            if item is not _EOS:
                backlog.append(item)
        for item in backlog:
            self._matches.put_nowait(item)
        self._apply_hello(header)
        self._closed = False
        self.evicted = False  # the resumed session is live again
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop(), name="wire-client-reader")

    # ------------------------------------------------------------------ requests
    def _register(self, kind: str) -> Tuple[int, asyncio.Future]:
        if self._closed:
            raise ConnectionClosedError("the client is closed")
        seq = next(self._seq)
        future = asyncio.get_running_loop().create_future()
        record = (kind, future, []) if kind == "stream" else (kind, future)
        self._pending[seq] = record
        return seq, future

    async def _request(self, header: dict, body: bytes = b"") -> tuple:
        seq, future = self._register("raw")
        header["seq"] = seq
        self._writer.write(encode_frame(header, body,
                                        max_frame=self._max_frame))
        await self._writer.drain()
        return await future

    async def subscribe(self, name: str, query: str) -> str:
        """Register a subscription; returns its canonical XPath form."""
        header, _body = await self._request(
            {"type": protocol.SUBSCRIBE, "name": name, "query": query})
        return header.get("canonical")

    async def unsubscribe(self, name: str) -> None:
        """Remove one of this connection's subscriptions."""
        await self._request({"type": protocol.UNSUBSCRIBE, "name": name})

    async def snapshot(self) -> dict:
        """The server's service snapshot (JSON-decoded)."""
        _header, body = await self._request({"type": protocol.SNAPSHOT})
        return json.loads(body.decode("utf-8"))

    # ------------------------------------------------------------------ publishing
    def submit(self, document: Union[str, bytes]) -> "asyncio.Future":
        """Write one publish frame and return its result future (pipelined).

        The write lands in the transport buffer without waiting for the ack —
        call :meth:`drain` (or just await the futures) after a burst.  The
        future resolves to a :class:`WirePublishResult` or raises
        :class:`RemoteError` / :class:`ConnectionClosedError`.
        """
        seq, future = self._register("pub")
        body = document.encode("utf-8") if isinstance(document, str) \
            else bytes(document)
        self._writer.write(encode_frame({"type": protocol.PUBLISH, "seq": seq},
                                        body, max_frame=self._max_frame))
        return future

    async def drain(self) -> None:
        """Flow control: wait until the transport buffer is below high water."""
        await self._writer.drain()

    async def publish(self, document: Union[str, bytes]) -> WirePublishResult:
        """Request-response publish: one document, ack awaited before returning."""
        future = self.submit(document)
        await self.drain()
        return await future

    async def publish_many(self, documents) -> List[WirePublishResult]:
        """Pipelined burst: submit everything, drain once, await all acks.

        Results come back in submission order; the first failed document's
        error is re-raised after the whole burst settled (matching
        ``PubSubService.publish_many`` semantics).
        """
        futures = [self.submit(document) for document in documents]
        await self.drain()
        if futures:
            await asyncio.gather(*futures, return_exceptions=True)
        return [future.result() for future in futures]

    async def publish_stream(self, chunks) -> List[WirePublishResult]:
        """Publish documents arriving as raw byte/text chunks.

        The server frames documents out of the chunk stream by element nesting
        (chunks may split tags, entities, multi-byte characters — and one chunk
        may hold many documents); each completed document is filtered and
        acknowledged individually, and the list of per-document results is
        returned once the stream's end is acknowledged.  ``chunks`` may be a
        plain or async iterable.  Concurrent calls are safe: the server allows
        one open stream per connection, so send phases queue on an internal
        lock (awaiting the final ack happens outside it, so a slow ack never
        blocks the next stream's chunks).
        """
        async with self._stream_lock:
            seq, future = self._register("stream")
            header = {"type": protocol.PUBLISH_STREAM, "seq": seq}
            if hasattr(chunks, "__aiter__"):
                async for chunk in chunks:
                    self._writer.write(encode_frame(
                        header, _chunk_bytes(chunk),
                        max_frame=self._max_frame))
                    await self.drain()
            else:
                for chunk in chunks:
                    self._writer.write(encode_frame(
                        header, _chunk_bytes(chunk),
                        max_frame=self._max_frame))
                    await self.drain()
            self._writer.write(encode_frame({**header, "end": True},
                                            max_frame=self._max_frame))
            await self.drain()
        return await future

    # ------------------------------------------------------------------ matches
    async def next_match(self, timeout: Optional[float] = None) -> WireMatch:
        """Wait for the next pushed match (``asyncio.TimeoutError`` on timeout).

        Raises :class:`ConnectionClosedError` once the connection ended and
        every already-received match has been consumed.
        """
        if self._matches.qsize() == 0 and self._reader_task is not None \
                and self._reader_task.done():
            raise ConnectionClosedError("the connection is closed")
        if timeout is None:
            item = await self._matches.get()
        else:
            item = await asyncio.wait_for(self._matches.get(), timeout)
        if item is _EOS:
            self._deliver_match(_EOS)  # re-arm for other consumers
            raise ConnectionClosedError("the connection is closed")
        if self._auto_ack:
            self.ack(item.document_id)
        return item

    def ack(self, document_id: int) -> None:
        """Acknowledge every match up to ``document_id`` (fire-and-forget).

        Advances the local :attr:`cursor` and, when the connection is live,
        sends a ``cursor`` frame — the durable server logs it, and after a
        crash nothing at or below the cursor is re-delivered.  With the
        default ``auto_ack=True`` this happens as :meth:`next_match` hands
        each match over; acking manually (``auto_ack=False``) moves the
        at-least-once boundary to wherever the consumer's own processing
        becomes durable.  Safe to call on a dead connection: the cursor is
        re-announced by the server on reconnect, and anything un-acked is
        simply re-delivered.
        """
        if document_id > self.cursor:
            self.cursor = document_id
        if self._closed:
            return
        try:
            self._writer.write(encode_frame(
                {"type": protocol.CURSOR, "document_id": document_id},
                max_frame=self._max_frame))
        except Exception:
            pass  # a dying transport: the un-acked tail re-delivers later

    async def notifications(self) -> AsyncIterator[WireMatch]:
        """Iterate pushed matches until the connection closes."""
        while True:
            try:
                yield await self.next_match()
            except ConnectionClosedError:
                return

    def pending_matches(self) -> int:
        """Pushed matches received but not yet consumed."""
        size = self._matches.qsize()
        if size and self._reader_task is not None and self._reader_task.done():
            size -= 1  # the EOS sentinel
        return max(0, size)

    def _deliver_match(self, item) -> None:
        """Enqueue a pushed match (or the EOS sentinel), dropping the oldest
        unread match on overflow — the reader must never block on a slow
        consumer, and the sentinel must always land so consumers wake."""
        while True:
            try:
                self._matches.put_nowait(item)
                return
            except asyncio.QueueFull:
                try:
                    evicted = self._matches.get_nowait()
                except asyncio.QueueEmpty:  # pragma: no cover - maxsize >= 1
                    continue
                if evicted is not _EOS:
                    self.dropped_matches += 1

    # ------------------------------------------------------------------ demux
    async def _read_loop(self) -> None:
        error: Exception = ConnectionClosedError("the connection is closed")
        try:
            while True:
                frame = await read_frame(self._reader,
                                         max_frame=self._max_frame)
                if frame is None:
                    break
                header, body = frame
                kind = header["type"]
                if kind == protocol.MATCH:
                    self._deliver_match(WireMatch(
                        document_id=header["document_id"],
                        matched=tuple(header["matched"]),
                        duplicate=bool(header.get("duplicate"))))
                elif kind == protocol.OVERLOADED:
                    if header.get("evicted"):
                        # unsolicited push: the governor evicted our session
                        # and will cut the socket next — remember why, so the
                        # consumer can branch on .evicted when the close lands
                        self.evicted = True
                    else:
                        self._dispatch(header, body)
                elif kind in (protocol.ACK, protocol.ERROR):
                    self._dispatch(header, body)
                # unknown pushes are ignored: forward compatibility
        except Exception as exc:
            error = ConnectionClosedError(f"the connection died: {exc!r}")
            error.__cause__ = exc
        finally:
            self._closed = True
            pending, self._pending = self._pending, {}
            for record in pending.values():
                future = record[1]
                if not future.done():
                    future.set_exception(error)
            self._deliver_match(_EOS)

    def _dispatch(self, header: dict, body: bytes) -> None:
        record = self._pending.get(header.get("seq"))
        if record is None:
            return  # response to a request nobody awaits anymore
        kind, future = record[0], record[1]
        if header["type"] == protocol.OVERLOADED:
            self._pending.pop(header["seq"], None)
            if not future.done():
                future.set_exception(_overloaded_error(header))
            return
        if header["type"] == protocol.ERROR:
            self._pending.pop(header["seq"], None)
            if not future.done():
                future.set_exception(RemoteError(
                    header.get("error", "?"), header.get("message", ""),
                    header))
            return
        if kind == "stream":
            partials = record[2]
            if header.get("partial"):
                partials.append(WirePublishResult(
                    document_id=header["document_id"],
                    matched=tuple(header["matched"])))
                return  # the stream stays pending until its end ack
            self._pending.pop(header["seq"], None)
            if not future.done():
                future.set_result(list(partials))
        elif kind == "pub":
            self._pending.pop(header["seq"], None)
            if not future.done():
                future.set_result(WirePublishResult(
                    document_id=header["document_id"],
                    matched=tuple(header["matched"])))
        else:  # raw request/response: hand back the frame itself
            self._pending.pop(header["seq"], None)
            if not future.done():
                future.set_result((header, body))


def _overloaded_error(header: dict) -> OverloadedError:
    retry_after = header.get("retry_after")
    if not isinstance(retry_after, (int, float)) or retry_after <= 0:
        retry_after = 1.0
    return OverloadedError(header.get("message", "the server is overloaded"),
                           retry_after=float(retry_after), header=header)


def _chunk_bytes(chunk: Union[str, bytes, bytearray, memoryview]) -> bytes:
    return chunk.encode("utf-8") if isinstance(chunk, str) else bytes(chunk)
