"""The asyncio client library of the TCP pub/sub front end.

:class:`WireClient` speaks the framed protocol of :mod:`repro.net.protocol`
against a :class:`~repro.net.server.WireServer`.  One background task reads the
socket and demultiplexes: ``ack``/``error`` frames resolve the pending request
they correlate to (by ``seq``), ``match`` frames land on a notification queue
exposed as the :meth:`WireClient.notifications` async iterator — so match pushes
never wait behind request/response traffic and vice versa.

The match queue is bounded and lossy-oldest, mirroring the service's session
delivery queues: a consumer that stops calling :meth:`WireClient.next_match`
must not grow client memory without limit, so on overflow the oldest unread
match is dropped and counted in :attr:`WireClient.dropped_matches` (consumers
that keep up never lose anything; the socket reader never blocks on delivery).

Pipelining is the point of the design: :meth:`submit` writes a publish frame and
returns a future *without* waiting for the ack, so a burst goes out back to back
and the server's ingest batching coalesces it (:meth:`publish_many` is the
convenience wrapper: submit all, drain once, gather).  :meth:`publish` is the
request-response form — await each ack before the next send — and exists mostly
as the slow baseline the wire benchmark compares against.

Reconnecting after a server restart from a snapshot is plain ``connect`` with
the old ``client_id``: the server adopts the restored session and the handshake
ack reports ``resumed`` plus the still-live subscription names.
"""

from __future__ import annotations

import asyncio
import itertools
import json
from dataclasses import dataclass
from typing import AsyncIterator, Dict, List, Optional, Tuple, Union

from . import protocol
from .protocol import MAX_FRAME, encode_frame, read_frame


class WireError(Exception):
    """Base class of everything this module raises."""


class ConnectionClosedError(WireError):
    """The connection ended (or died) with requests still outstanding."""


class RemoteError(WireError):
    """An ``error`` frame from the server, re-raised at the awaiting caller.

    ``error_type`` carries the server-side exception class name (e.g.
    ``XMLParseError``, ``UnsupportedQueryError``) so callers can branch without
    string-matching the message.
    """

    def __init__(self, error_type: str, message: str, header: dict) -> None:
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.message = message
        self.header = header


@dataclass(frozen=True)
class WireMatch:
    """One pushed match notification."""

    document_id: int  #: service-wide publish sequence number of the document
    matched: Tuple[str, ...]  #: this client's local subscription names


@dataclass(frozen=True)
class WirePublishResult:
    """One acknowledged publish."""

    document_id: int  #: service-wide publish sequence number
    matched: Tuple[str, ...]  #: matched subscriptions as global ``client:name`` ids


#: end-of-stream sentinel on the match queue
_EOS = object()


class WireClient:
    """One connection to a wire server.  Create with :meth:`connect`."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, *, max_frame: int,
                 max_pending_matches: int = 1024) -> None:
        self._reader = reader
        self._writer = writer
        self._max_frame = max_frame
        self._seq = itertools.count(1)
        # the server allows one open stream per connection, so stream send
        # phases are serialized here; other requests interleave freely
        self._stream_lock = asyncio.Lock()
        #: seq -> ("raw"|"pub", future) or ("stream", future, partial results)
        self._pending: Dict[int, tuple] = {}
        # bounded + lossy-oldest, like the service's session delivery queues:
        # an abandoned consumer must not let pushed matches grow without limit
        self._matches: asyncio.Queue = asyncio.Queue(
            maxsize=max(1, max_pending_matches))
        self.dropped_matches = 0  #: matches dropped because the queue was full
        self._reader_task: Optional[asyncio.Task] = None
        self._client_id: Optional[str] = None
        self._resumed = False
        self._server_subscriptions: List[str] = []
        self._closed = False

    # ------------------------------------------------------------------ lifecycle
    @classmethod
    async def connect(cls, host: str, port: int, *,
                      client_id: Optional[str] = None,
                      max_frame: int = MAX_FRAME,
                      max_pending_matches: int = 1024) -> "WireClient":
        """Open a connection and complete the ``hello`` handshake.

        ``client_id`` names the session: pass the previous id after a server
        restart to adopt the session the snapshot restored (check
        :attr:`resumed` and :attr:`server_subscriptions` afterwards); ``None``
        lets the server assign a fresh one.  ``max_pending_matches`` bounds the
        pushed-match queue; on overflow the oldest unread match is dropped and
        counted in :attr:`dropped_matches`.
        """
        reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer, max_frame=max_frame,
                     max_pending_matches=max_pending_matches)
        writer.write(encode_frame({"type": protocol.HELLO, "seq": 0,
                                   "client": client_id},
                                  max_frame=max_frame))
        await writer.drain()
        frame = await read_frame(reader, max_frame=max_frame)
        if frame is None:
            raise ConnectionClosedError("server closed during the handshake")
        header, _body = frame
        if header["type"] == protocol.ERROR:
            writer.close()
            raise RemoteError(header.get("error", "?"),
                              header.get("message", ""), header)
        client._client_id = header["client"]
        client._resumed = bool(header.get("resumed"))
        client._server_subscriptions = list(header.get("subscriptions", []))
        client._reader_task = asyncio.get_running_loop().create_task(
            client._read_loop(), name="wire-client-reader")
        return client

    @property
    def client_id(self) -> str:
        """The session id the server assigned (or adopted)."""
        return self._client_id

    @property
    def resumed(self) -> bool:
        """Whether the handshake adopted an existing (restored) session."""
        return self._resumed

    @property
    def server_subscriptions(self) -> List[str]:
        """Local subscription names live on the session at handshake time."""
        return list(self._server_subscriptions)

    async def close(self) -> None:
        """Close the connection (idempotent).  Outstanding requests fail."""
        if self._closed:
            return
        self._closed = True
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except Exception:
            pass
        if self._reader_task is not None:
            await self._reader_task

    async def __aenter__(self) -> "WireClient":
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.close()

    # ------------------------------------------------------------------ requests
    def _register(self, kind: str) -> Tuple[int, asyncio.Future]:
        if self._closed:
            raise ConnectionClosedError("the client is closed")
        seq = next(self._seq)
        future = asyncio.get_running_loop().create_future()
        record = (kind, future, []) if kind == "stream" else (kind, future)
        self._pending[seq] = record
        return seq, future

    async def _request(self, header: dict, body: bytes = b"") -> tuple:
        seq, future = self._register("raw")
        header["seq"] = seq
        self._writer.write(encode_frame(header, body,
                                        max_frame=self._max_frame))
        await self._writer.drain()
        return await future

    async def subscribe(self, name: str, query: str) -> str:
        """Register a subscription; returns its canonical XPath form."""
        header, _body = await self._request(
            {"type": protocol.SUBSCRIBE, "name": name, "query": query})
        return header.get("canonical")

    async def unsubscribe(self, name: str) -> None:
        """Remove one of this connection's subscriptions."""
        await self._request({"type": protocol.UNSUBSCRIBE, "name": name})

    async def snapshot(self) -> dict:
        """The server's service snapshot (JSON-decoded)."""
        _header, body = await self._request({"type": protocol.SNAPSHOT})
        return json.loads(body.decode("utf-8"))

    # ------------------------------------------------------------------ publishing
    def submit(self, document: Union[str, bytes]) -> "asyncio.Future":
        """Write one publish frame and return its result future (pipelined).

        The write lands in the transport buffer without waiting for the ack —
        call :meth:`drain` (or just await the futures) after a burst.  The
        future resolves to a :class:`WirePublishResult` or raises
        :class:`RemoteError` / :class:`ConnectionClosedError`.
        """
        seq, future = self._register("pub")
        body = document.encode("utf-8") if isinstance(document, str) \
            else bytes(document)
        self._writer.write(encode_frame({"type": protocol.PUBLISH, "seq": seq},
                                        body, max_frame=self._max_frame))
        return future

    async def drain(self) -> None:
        """Flow control: wait until the transport buffer is below high water."""
        await self._writer.drain()

    async def publish(self, document: Union[str, bytes]) -> WirePublishResult:
        """Request-response publish: one document, ack awaited before returning."""
        future = self.submit(document)
        await self.drain()
        return await future

    async def publish_many(self, documents) -> List[WirePublishResult]:
        """Pipelined burst: submit everything, drain once, await all acks.

        Results come back in submission order; the first failed document's
        error is re-raised after the whole burst settled (matching
        ``PubSubService.publish_many`` semantics).
        """
        futures = [self.submit(document) for document in documents]
        await self.drain()
        if futures:
            await asyncio.gather(*futures, return_exceptions=True)
        return [future.result() for future in futures]

    async def publish_stream(self, chunks) -> List[WirePublishResult]:
        """Publish documents arriving as raw byte/text chunks.

        The server frames documents out of the chunk stream by element nesting
        (chunks may split tags, entities, multi-byte characters — and one chunk
        may hold many documents); each completed document is filtered and
        acknowledged individually, and the list of per-document results is
        returned once the stream's end is acknowledged.  ``chunks`` may be a
        plain or async iterable.  Concurrent calls are safe: the server allows
        one open stream per connection, so send phases queue on an internal
        lock (awaiting the final ack happens outside it, so a slow ack never
        blocks the next stream's chunks).
        """
        async with self._stream_lock:
            seq, future = self._register("stream")
            header = {"type": protocol.PUBLISH_STREAM, "seq": seq}
            if hasattr(chunks, "__aiter__"):
                async for chunk in chunks:
                    self._writer.write(encode_frame(
                        header, _chunk_bytes(chunk),
                        max_frame=self._max_frame))
                    await self.drain()
            else:
                for chunk in chunks:
                    self._writer.write(encode_frame(
                        header, _chunk_bytes(chunk),
                        max_frame=self._max_frame))
                    await self.drain()
            self._writer.write(encode_frame({**header, "end": True},
                                            max_frame=self._max_frame))
            await self.drain()
        return await future

    # ------------------------------------------------------------------ matches
    async def next_match(self, timeout: Optional[float] = None) -> WireMatch:
        """Wait for the next pushed match (``asyncio.TimeoutError`` on timeout).

        Raises :class:`ConnectionClosedError` once the connection ended and
        every already-received match has been consumed.
        """
        if self._matches.qsize() == 0 and self._reader_task is not None \
                and self._reader_task.done():
            raise ConnectionClosedError("the connection is closed")
        if timeout is None:
            item = await self._matches.get()
        else:
            item = await asyncio.wait_for(self._matches.get(), timeout)
        if item is _EOS:
            self._deliver_match(_EOS)  # re-arm for other consumers
            raise ConnectionClosedError("the connection is closed")
        return item

    async def notifications(self) -> AsyncIterator[WireMatch]:
        """Iterate pushed matches until the connection closes."""
        while True:
            try:
                yield await self.next_match()
            except ConnectionClosedError:
                return

    def pending_matches(self) -> int:
        """Pushed matches received but not yet consumed."""
        size = self._matches.qsize()
        if size and self._reader_task is not None and self._reader_task.done():
            size -= 1  # the EOS sentinel
        return max(0, size)

    def _deliver_match(self, item) -> None:
        """Enqueue a pushed match (or the EOS sentinel), dropping the oldest
        unread match on overflow — the reader must never block on a slow
        consumer, and the sentinel must always land so consumers wake."""
        while True:
            try:
                self._matches.put_nowait(item)
                return
            except asyncio.QueueFull:
                try:
                    evicted = self._matches.get_nowait()
                except asyncio.QueueEmpty:  # pragma: no cover - maxsize >= 1
                    continue
                if evicted is not _EOS:
                    self.dropped_matches += 1

    # ------------------------------------------------------------------ demux
    async def _read_loop(self) -> None:
        error: Exception = ConnectionClosedError("the connection is closed")
        try:
            while True:
                frame = await read_frame(self._reader,
                                         max_frame=self._max_frame)
                if frame is None:
                    break
                header, body = frame
                kind = header["type"]
                if kind == protocol.MATCH:
                    self._deliver_match(WireMatch(
                        document_id=header["document_id"],
                        matched=tuple(header["matched"])))
                elif kind in (protocol.ACK, protocol.ERROR):
                    self._dispatch(header, body)
                # unknown pushes are ignored: forward compatibility
        except Exception as exc:
            error = ConnectionClosedError(f"the connection died: {exc!r}")
            error.__cause__ = exc
        finally:
            self._closed = True
            pending, self._pending = self._pending, {}
            for record in pending.values():
                future = record[1]
                if not future.done():
                    future.set_exception(error)
            self._deliver_match(_EOS)

    def _dispatch(self, header: dict, body: bytes) -> None:
        record = self._pending.get(header.get("seq"))
        if record is None:
            return  # response to a request nobody awaits anymore
        kind, future = record[0], record[1]
        if header["type"] == protocol.ERROR:
            self._pending.pop(header["seq"], None)
            if not future.done():
                future.set_exception(RemoteError(
                    header.get("error", "?"), header.get("message", ""),
                    header))
            return
        if kind == "stream":
            partials = record[2]
            if header.get("partial"):
                partials.append(WirePublishResult(
                    document_id=header["document_id"],
                    matched=tuple(header["matched"])))
                return  # the stream stays pending until its end ack
            self._pending.pop(header["seq"], None)
            if not future.done():
                future.set_result(list(partials))
        elif kind == "pub":
            self._pending.pop(header["seq"], None)
            if not future.done():
                future.set_result(WirePublishResult(
                    document_id=header["document_id"],
                    matched=tuple(header["matched"])))
        else:  # raw request/response: hand back the frame itself
            self._pending.pop(header["seq"], None)
            if not future.done():
                future.set_result((header, body))


def _chunk_bytes(chunk: Union[str, bytes, bytearray, memoryview]) -> bytes:
    return chunk.encode("utf-8") if isinstance(chunk, str) else bytes(chunk)
