"""The length-prefixed wire protocol of the TCP pub/sub front end.

One *frame* is the unit of transmission in both directions::

    +----------------+---------------------+------+----------------+
    | length (u32 BE)| JSON header (utf-8) | \\n  | raw body bytes |
    +----------------+---------------------+------+----------------+

``length`` covers everything after the prefix (header + separator + body).  The
header is a flat JSON object whose ``"type"`` field names the message; the body
carries whatever bulk payload the message moves — raw XML text for ``publish``,
a raw chunk for ``publish_stream``, a JSON service snapshot for the ``snapshot``
reply — so documents never pay JSON string-escaping on the wire and the server
can hand publish bodies straight to the tokenizer.

Message types
-------------

Client to server: ``hello`` (handshake, optional ``client`` id to resume a
restored session), ``subscribe``/``unsubscribe`` (``name``, ``query``),
``publish`` (XML body), ``publish_stream`` (one chunk per frame, terminated by
``end: true``; the server frames documents out of the chunk stream by element
nesting via :class:`~repro.xmlstream.parse.DocumentFramer`), ``snapshot``, and
``cursor`` — a fire-and-forget acknowledgement that the client durably consumed
every match up to ``document_id`` (the durable service logs it; no reply).

Server to client: ``ack`` / ``error`` (correlated to the request by its ``seq``
header field, so responses may arrive out of order with respect to *other*
requests — pipelining), ``match`` — an unsolicited push notification for a
document that matched one of the connection's subscriptions (``duplicate:
true`` marks an at-least-once re-delivery after crash recovery) — and
``overloaded``, the resource governor's typed rejection: the request it
correlates to (by ``seq``; a ``hello`` rejection uses the hello's seq) had no
effect and may be retried after the ``retry_after`` hint (seconds).  The
``hello`` ack carries the session's acked ``cursor`` so a reconnecting client
knows where it resumes.

The JSON header never contains a raw newline (``json.dumps`` escapes control
characters inside strings), so the first ``\\n`` of the payload is always the
header/body separator.  Frames larger than ``max_frame`` are refused on both
send and receive: a garbage length prefix must not make the receiver allocate
gigabytes.

Two decoding front ends are provided: :func:`read_frame` for asyncio stream
readers (the server and client use it), and the sans-IO :class:`FrameDecoder`
for tests and non-asyncio transports — both tolerate arbitrary chunking, down
to one byte at a time.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import List, Optional, Tuple

#: refuse frames larger than this many payload bytes (send and receive)
MAX_FRAME = 16 * 1024 * 1024

_LEN = struct.Struct("!I")

# message types (the "type" header field)
HELLO = "hello"
SUBSCRIBE = "subscribe"
UNSUBSCRIBE = "unsubscribe"
PUBLISH = "publish"
PUBLISH_STREAM = "publish_stream"
SNAPSHOT = "snapshot"
CURSOR = "cursor"
MATCH = "match"
ERROR = "error"
ACK = "ack"
OVERLOADED = "overloaded"

#: one decoded frame: (header dict, raw body bytes)
Frame = Tuple[dict, bytes]


class ProtocolError(ValueError):
    """Raised for malformed frames; connection-fatal (framing is lost)."""


def encode_frame(header: dict, body: bytes = b"", *,
                 max_frame: int = MAX_FRAME) -> bytes:
    """Encode one frame (header must be a JSON-able dict with a ``type``).

    ``max_frame`` must match the receiving side's limit: an endpoint
    configured for larger frames passes its own limit here too, so the
    send/receive symmetry holds at whatever size a deployment chose.
    """
    head = json.dumps(header, separators=(",", ":")).encode("utf-8")
    length = len(head) + 1 + len(body)
    if length > max_frame:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {max_frame}-byte limit")
    return b"".join((_LEN.pack(length), head, b"\n", body))


def decode_payload(payload: bytes) -> Frame:
    """Split one frame payload into its header dict and raw body."""
    sep = payload.find(b"\n")
    if sep < 0:
        raise ProtocolError("frame has no header/body separator")
    try:
        header = json.loads(payload[:sep].decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"frame header is not valid JSON: {exc}") from exc
    if not isinstance(header, dict) or not isinstance(header.get("type"), str):
        raise ProtocolError(f"frame header must be an object with a 'type': "
                            f"{header!r}")
    return header, payload[sep + 1:]


async def read_frame(reader: "asyncio.StreamReader", *,
                     max_frame: int = MAX_FRAME) -> Optional[Frame]:
    """Read one frame from an asyncio stream.

    Returns ``None`` on a clean EOF (the connection closed *between* frames);
    an EOF inside a frame — truncation — raises :class:`ProtocolError`, as does
    a length prefix beyond ``max_frame``.
    """
    try:
        prefix = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed inside a frame's length "
                            "prefix") from exc
    (length,) = _LEN.unpack(prefix)
    if length > max_frame:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {max_frame}-byte limit")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed {len(exc.partial)}/{length} bytes into a "
            "frame") from exc
    return decode_payload(payload)


class FrameDecoder:
    """Sans-IO incremental frame decoder: feed bytes, collect complete frames.

    Tolerates arbitrary chunk boundaries (the length prefix itself may arrive
    one byte at a time).  Mirrors :func:`read_frame` exactly — the two can
    never disagree on what constitutes a frame.
    """

    def __init__(self, *, max_frame: int = MAX_FRAME) -> None:
        self._max_frame = max_frame
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[Frame]:
        """Consume one chunk, returning every frame that completed within it."""
        self._buffer.extend(data)
        frames: List[Frame] = []
        while True:
            if len(self._buffer) < _LEN.size:
                return frames
            (length,) = _LEN.unpack_from(self._buffer)
            if length > self._max_frame:
                raise ProtocolError(f"frame of {length} bytes exceeds the "
                                    f"{self._max_frame}-byte limit")
            end = _LEN.size + length
            if len(self._buffer) < end:
                return frames
            payload = bytes(self._buffer[_LEN.size:end])
            del self._buffer[:end]
            frames.append(decode_payload(payload))

    @property
    def at_boundary(self) -> bool:
        """Whether the stream currently sits exactly between frames."""
        return not self._buffer
