"""The asyncio TCP server fronting one :class:`~repro.service.PubSubService`.

:class:`WireServer` binds a listening socket and maps each accepted connection to
one :class:`~repro.service.session.ClientSession`: the ``hello`` handshake either
opens a fresh session or — when the client names a session that already exists on
the service and has no live connection, the snapshot-restore reconnect path —
*adopts* it, subscriptions intact.  After the handshake three per-connection
coroutines cooperate:

* the **reader** consumes frames in order.  Control operations (subscribe,
  unsubscribe, snapshot) are answered inline; ``publish`` bodies are *submitted*
  (:meth:`~repro.service.server.PubSubService.submit`) without awaiting their
  outcome, so a pipelining client keeps the service's batch coalescing fed;
  ``publish_stream`` chunks feed a per-stream
  :class:`~repro.xmlstream.parse.DocumentFramer`, and every document that
  completes is submitted the same way (pre-tokenized — the framer's output goes
  straight to the bank, the text is never re-parsed).
* the **ack pump** awaits submitted outcomes in submission order and writes one
  ``ack`` (or ``error``) frame per document.
* the **notifier** drains the session's delivery queue into unsolicited
  ``match`` frames.

Backpressure reaches the socket instead of server memory: the pending-ack queue
between reader and pump is bounded (``max_pipeline``), and the service's ingest
queue bounds submission itself — when either fills, the reader simply stops
reading, the kernel receive buffer fills, and the client's ``drain()`` blocks.
Nothing on this path buffers unboundedly.

Disconnect and shutdown drain rather than drop: on EOF the reader waits for
every accepted publish to be answered before the session closes; on
:meth:`WireServer.stop` the listener closes first, each live connection is
drained the same way, and the owned service's own ``stop()`` (which answers
everything its ingest queue accepted) runs last.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
from typing import Optional, Set, Tuple

from ..core.errors import ConfigError
from ..service import OverloadedError, PendingPublish, PubSubService
from ..service.session import ClientSession, SessionClosedError
from ..xmlstream.parse import DocumentFramer, XMLParseError
from . import protocol
from .protocol import MAX_FRAME, ProtocolError, encode_frame, read_frame


class SessionBusyError(RuntimeError):
    """A ``hello`` named a session that already has a live connection.

    The typed rejection of the adopt race: two connections must never share
    one session (their notifiers would compete for its delivery queue), so the
    second ``hello`` is refused with this error — the client sees a
    ``RemoteError`` whose ``error_type`` is ``"SessionBusyError"`` and can
    back off and retry, rather than silently hijacking the session.
    """


class PublishAbandonedError(RuntimeError):
    """A queued publish was abandoned because the server stopped.

    Sent as an ``error`` frame for every publish still awaiting its ack when
    a stop/disconnect drain timed out, so a pipelined client's futures fail
    promptly instead of hanging until the socket closes.  The document may or
    may not have been filtered; on a durable service it is in the WAL and
    will be re-delivered at least once after recovery.
    """


class WireServer:
    """A TCP front end over one pub/sub service.

    Parameters
    ----------
    service:
        An existing :class:`PubSubService` to front (e.g. one rebuilt by
        :meth:`~repro.service.PubSubService.restore`).  ``None`` constructs a
        fresh service from ``service_config`` and owns it: :meth:`stop` then
        stops the service too.  Pass ``close_service=True`` to extend that
        ownership to a provided service.
    host / port:
        Listen address; port ``0`` (the default) picks an ephemeral port,
        published as :attr:`address` after :meth:`start`.
    max_pipeline:
        Per-connection bound on publishes submitted but not yet acknowledged —
        the knob that turns a runaway pipelining client into socket
        backpressure instead of server-side memory.
    retain_sessions:
        ``False`` (default) closes a connection's session on plain disconnect,
        ending its subscriptions — the original contract.  ``True`` keeps the
        session alive and adoptable, so a client that lost its TCP connection
        can reconnect with the same client id and resume from its acked
        cursor (the durable-delivery reconnect path; pair it with a durable
        service so undelivered matches survive a crash too).
    """

    def __init__(self, service: Optional[PubSubService] = None, *,
                 host: str = "127.0.0.1", port: int = 0,
                 max_pipeline: int = 256, max_frame: int = MAX_FRAME,
                 drain_timeout: float = 5.0,
                 close_service: Optional[bool] = None,
                 retain_sessions: bool = False,
                 **service_config) -> None:
        if service is not None and service_config:
            raise ValueError("pass either a service or a service configuration")
        if max_pipeline < 1:
            raise ConfigError(
                f"max_pipeline must be at least 1, got {max_pipeline!r}")
        if max_frame < 64:
            # a frame needs room for its JSON header; anything smaller can
            # never carry even an empty ack
            raise ConfigError(
                f"max_frame must be at least 64 bytes, got {max_frame!r}")
        if drain_timeout < 0:
            raise ConfigError(
                f"drain_timeout must be >= 0, got {drain_timeout!r}")
        self._service = service if service is not None \
            else PubSubService(**service_config)
        self._close_service = close_service if close_service is not None \
            else service is None
        self._host = host
        self._port = port
        self._max_pipeline = max_pipeline
        self._max_frame = max_frame
        #: how long a drain (disconnect or stop) may wait on a client that
        #: stopped reading its acks before the socket is cut anyway
        self._drain_timeout = drain_timeout
        self._retain_sessions = retain_sessions
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: Set["_Connection"] = set()
        self._bound: Set[str] = set()  # client ids with a live connection
        self._stopping = False
        #: publishes abandoned un-acked by a timed-out drain (each one was
        #: answered with a PublishAbandonedError ``error`` frame, best effort)
        self.dropped_on_stop = 0

    @classmethod
    def restore(cls, snapshot: dict, **kwargs) -> "WireServer":
        """A server fronting a service rebuilt from a snapshot (and owning it).

        The reconnect path: clients that ``hello`` with their old client id
        adopt their restored session, subscriptions intact, without a single
        re-``subscribe`` on the wire.
        """
        overrides = kwargs.pop("service_overrides", {})
        server = cls(PubSubService.restore(snapshot, **overrides), **kwargs)
        server._close_service = True
        return server

    # ------------------------------------------------------------------ lifecycle
    @property
    def service(self) -> PubSubService:
        """The fronted service (for metrics/snapshots; mutations go on-wire)."""
        return self._service

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — call after :meth:`start`."""
        if self._server is None:
            raise RuntimeError("the server is not started")
        return self._server.sockets[0].getsockname()[:2]

    async def start(self) -> Tuple[str, int]:
        """Start the service's ingest worker and begin accepting connections."""
        if self._server is not None:
            return self.address
        self._stopping = False
        await self._service.start()
        self._server = await asyncio.start_server(
            self._accept, self._host, self._port)
        return self.address

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain connections, stop the service.

        Every publish accepted from every connection is answered before its
        socket closes; the owned service is stopped (draining its own ingest
        queue) last.  Idempotent.
        """
        self._stopping = True
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        connections = list(self._connections)
        if connections:
            # drain concurrently: each connection already bounds its own drain
            # with drain_timeout, so shutdown is one drain window, not N
            await asyncio.gather(
                *(connection.drain_and_close() for connection in connections),
                return_exceptions=True)
        if self._connections:
            await asyncio.gather(
                *(c.finished() for c in list(self._connections)),
                return_exceptions=True)
        if self._close_service:
            await self._service.stop()

    async def __aenter__(self) -> "WireServer":
        await self.start()
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.stop()

    def _accept(self, reader: asyncio.StreamReader,
                writer: asyncio.StreamWriter) -> None:
        connection = _Connection(self, reader, writer)
        self._connections.add(connection)
        connection.task = asyncio.get_running_loop().create_task(
            connection.run(), name="wire-connection")

    def connection_count(self) -> int:
        """Live (accepted, not yet torn down) connections."""
        return len(self._connections)


class _Connection:
    """One accepted socket: reader loop + ack pump + match notifier."""

    def __init__(self, server: WireServer, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self._server = server
        self._reader = reader
        self._writer = writer
        self._write_lock = asyncio.Lock()
        self._session: Optional[ClientSession] = None
        self._acks: asyncio.Queue = asyncio.Queue(maxsize=server._max_pipeline)
        self._inflight: Optional[tuple] = None  # entry the pump is answering
        self._pump_task: Optional[asyncio.Task] = None
        self._notify_task: Optional[asyncio.Task] = None
        self._stream: Optional[dict] = None  # in-progress publish_stream state
        self._failed_stream = None  # seq of a stream whose tail must be dropped
        self.task: Optional[asyncio.Task] = None

    async def finished(self) -> None:
        if self.task is not None:
            try:
                await self.task
            except asyncio.CancelledError:
                if not self.task.cancelled():
                    raise  # the cancellation targeted this awaiter, not the task
            except Exception:
                pass  # the connection's own failure was handled in run()

    # ------------------------------------------------------------------ main loop
    async def run(self) -> None:
        try:
            if await self._handshake():
                self._pump_task = asyncio.get_running_loop().create_task(
                    self._ack_pump(), name="wire-ack-pump")
                self._notify_task = asyncio.get_running_loop().create_task(
                    self._notify_pump(), name="wire-notifier")
                await self._serve()
                # drain on disconnect: answer everything accepted (bounded by
                # the drain timeout in case the peer also stopped reading)
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(self._acks.join(),
                                           self._server._drain_timeout)
        except (ProtocolError, XMLParseError) as exc:
            # framing is lost (or the stream framer is poisoned): report once,
            # best effort, then close — resynchronizing means reconnecting
            with contextlib.suppress(Exception):
                await self._send_error(None, exc)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer vanished: nothing to answer to
        finally:
            await self._teardown()

    async def _handshake(self) -> bool:
        frame = await read_frame(self._reader, max_frame=self._server._max_frame)
        if frame is None:
            return False  # connected and left without a word
        header, _body = frame
        if header["type"] != protocol.HELLO:
            raise ProtocolError(
                f"expected hello, got {header['type']!r}")
        seq = header.get("seq")
        requested = header.get("client")
        service = self._server._service
        resumed = False
        try:
            session = None
            if requested is not None:
                if requested in self._server._bound:
                    # the adopt race: the name is owned by a LIVE connection.
                    # Reject with a typed error — adopting would give two
                    # connections one delivery queue, and falling through to
                    # connect() would mask the situation as a duplicate-name
                    # ValueError
                    raise SessionBusyError(
                        f"session {requested!r} already has a live connection")
                try:
                    candidate = service.session(requested)
                except KeyError:
                    candidate = None
                if candidate is not None and not candidate.closed:
                    session = candidate  # adopt (snapshot-restore reconnect)
                    resumed = True
            if session is None:
                if service.overloaded:
                    # a NEW session would add load the governor is shedding;
                    # adoption (above) stays allowed — an evicted or
                    # disconnected client resuming its durable cursor is how
                    # the backlog drains
                    raise OverloadedError(
                        "the service is overloaded; not accepting new sessions",
                        retry_after=service.overload_retry_after)
                session = await service.connect(requested)
        except OverloadedError as exc:
            await self._send_overloaded(seq, exc)
            return False
        except Exception as exc:
            await self._send_error(seq, exc)
            return False
        self._session = session
        self._server._bound.add(session.client_id)
        await self._send({"type": protocol.ACK, "seq": seq,
                          "client": session.client_id, "resumed": resumed,
                          "cursor": session.cursor,
                          "subscriptions": session.subscriptions()})
        return True

    async def _serve(self) -> None:
        service = self._server._service
        session = self._session
        while True:
            frame = await read_frame(self._reader,
                                     max_frame=self._server._max_frame)
            if frame is None:
                return  # clean EOF between frames
            header, body = frame
            kind = header["type"]
            seq = header.get("seq")
            if kind == protocol.PUBLISH:
                try:
                    text = body.decode("utf-8")
                except UnicodeDecodeError as exc:
                    await self._send_error(seq, exc)
                    continue
                # both awaits are backpressure points: ingest-queue admission
                # and the pending-ack bound — a full one pauses reading
                try:
                    handle = await service.submit(text)
                except OverloadedError as exc:
                    # typed, retryable rejection: the document had no effect
                    # (no id, no WAL record) and the frame carries retry_after
                    await self._send_overloaded(seq, exc)
                    continue
                await self._acks.put(("pub", seq, handle))
            elif kind == protocol.PUBLISH_STREAM:
                await self._stream_chunk(seq, header, body)
            elif kind == protocol.SUBSCRIBE:
                try:
                    canonical = await session.subscribe(
                        header["name"], header["query"])
                except Exception as exc:
                    await self._send_error(seq, exc)
                else:
                    await self._send({"type": protocol.ACK, "seq": seq,
                                      "canonical": canonical})
            elif kind == protocol.UNSUBSCRIBE:
                try:
                    await session.unsubscribe(header["name"])
                except Exception as exc:
                    await self._send_error(seq, exc)
                else:
                    await self._send({"type": protocol.ACK, "seq": seq})
            elif kind == protocol.CURSOR:
                # fire-and-forget ack: no reply frame, malformed ids ignored
                # (failing the connection over a bad ack would lose more than
                # the ack ever protected)
                document_id = header.get("document_id")
                if isinstance(document_id, int) and not session.closed:
                    service.ack_cursor(session.client_id, document_id)
            elif kind == protocol.SNAPSHOT:
                try:
                    snapshot = service.snapshot()
                except Exception as exc:
                    await self._send_error(seq, exc)
                else:
                    await self._send({"type": protocol.ACK, "seq": seq},
                                     json.dumps(snapshot).encode("utf-8"))
            elif kind == protocol.HELLO:
                raise ProtocolError("duplicate hello")
            else:
                raise ProtocolError(f"unknown message type {kind!r}")

    # ------------------------------------------------------------------ streaming
    async def _stream_chunk(self, seq, header: dict, body: bytes) -> None:
        """One ``publish_stream`` chunk: feed the framer, submit what completed.

        Documents are framed by element nesting (depth returning to zero), so
        the client never declares boundaries; chunks may split tags, entities
        and multi-byte characters arbitrarily.  A framing error fails the
        stream (``error`` frame) but not the connection — documents that
        completed before the error are salvaged and still filtered, so delivery
        never depends on how the transport chunked bytes around the failure,
        while the failed stream's still-in-flight tail chunks are *discarded*
        up to its end marker (the client was told the stream failed; publishing
        its tail would silently deliver documents from a failed stream).
        """
        stream = self._stream
        if stream is None:
            if seq is not None and seq == self._failed_stream:
                # the tail of a stream that already failed: its documents must
                # NOT be published (the client was told the stream failed), so
                # discard chunks until the end marker closes the failed stream
                if header.get("end"):
                    self._failed_stream = None
                return
            stream = self._stream = {"seq": seq, "framer": DocumentFramer(),
                                     "count": 0}
        elif stream["seq"] != seq:
            raise ProtocolError(
                f"publish_stream {seq!r} interleaved with open stream "
                f"{stream['seq']!r}")
        service = self._server._service
        try:
            documents = stream["framer"].feed(body) if body else []
        except XMLParseError as exc:
            documents = stream["framer"].take_completed()
            await self._submit_stream_docs(service, stream, documents)
            await self._acks.put(("stream_error", seq, exc, stream["count"]))
            self._stream = None
            if not header.get("end"):
                self._failed_stream = seq
            return
        await self._submit_stream_docs(service, stream, documents)
        if header.get("end"):
            try:
                stream["framer"].close()
            except XMLParseError as exc:
                await self._acks.put(("stream_error", seq, exc, stream["count"]))
            else:
                await self._acks.put(("stream_end", seq, stream["count"]))
            self._stream = None

    async def _submit_stream_docs(self, service: PubSubService, stream: dict,
                                  documents) -> None:
        for tokens in documents:  # pre-tokenized: straight to the bank
            try:
                handle = await service.submit(tokens)
            except OverloadedError as exc:
                # per-document rejection, mirroring per-document acks: the
                # framed document had no effect and the indexed overloaded
                # frame tells the client exactly which one to retry
                stream["count"] += 1
                await self._acks.put(
                    ("stream_overload", stream["seq"], stream["count"], exc))
                continue
            stream["count"] += 1
            await self._acks.put(
                ("stream_doc", stream["seq"], stream["count"], handle))

    # ------------------------------------------------------------------ ack pump
    async def _ack_pump(self) -> None:
        """Answer submitted publishes in submission order (= outcome order).

        A dead socket must not wedge the pump: once a send fails, remaining
        entries are *retired* — their outcomes still awaited, so the service's
        futures are consumed and a drain (`.join()`) still completes — without
        attempting further writes.
        """
        broken = False
        while True:
            entry = await self._acks.get()
            # published where an abandoning drain can see it: a cancellation
            # mid-processing leaves this entry neither queued nor answered,
            # and it too must get its abandonment error frame
            self._inflight = entry
            try:
                if broken:
                    await self._retire(entry)
                else:
                    try:
                        await self._process_ack(entry)
                    except Exception:
                        broken = True
                        await self._retire(entry)
            finally:
                self._acks.task_done()
            self._inflight = None

    async def _process_ack(self, entry: tuple) -> None:
        kind = entry[0]
        if kind == "pub":
            _kind, seq, handle = entry
            await self._ack_outcome(seq, handle, {})
        elif kind == "stream_doc":
            _kind, seq, index, handle = entry
            await self._ack_outcome(seq, handle,
                                    {"index": index, "partial": True})
        elif kind == "stream_end":
            _kind, seq, count = entry
            await self._send({"type": protocol.ACK, "seq": seq,
                              "end": True, "documents": count})
        elif kind == "stream_overload":
            _kind, seq, index, exc = entry
            await self._send_overloaded(seq, exc, index=index, partial=True)
        else:  # stream_error
            _kind, seq, exc, count = entry
            await self._send_error(seq, exc, end=True, documents=count)

    @staticmethod
    async def _retire(entry: tuple) -> None:
        """Consume an entry's outcome without writing (awaiting a done handle
        twice is harmless, so retiring after a half-processed entry is safe)."""
        if entry[0] in ("pub", "stream_doc"):
            handle = entry[2] if entry[0] == "pub" else entry[3]
            try:
                await handle.wait()
            except asyncio.CancelledError:
                # a cancelled pump cancels the future it was awaiting; that
                # cancellation belongs to the entry, not to whoever retires
                # it — but a cancel aimed at *this* awaiter must propagate
                if not handle.done():
                    raise
            except Exception:
                pass

    async def _ack_outcome(self, seq, handle: PendingPublish,
                           extra: dict) -> None:
        try:
            result = await handle.wait()
        except Exception as exc:
            await self._send_error(seq, exc, **extra)
        else:
            await self._send({"type": protocol.ACK, "seq": seq,
                              "document_id": result.document_id,
                              "matched": list(result.matched), **extra})

    async def _notify_pump(self) -> None:
        """Push the session's delivery queue as unsolicited ``match`` frames."""
        with contextlib.suppress(ConnectionError):
            async for note in self._session.notifications():
                await self._send({"type": protocol.MATCH,
                                  "document_id": note.document_id,
                                  "matched": list(note.matched),
                                  "duplicate": note.duplicate})
        if self._session is not None and self._session.evicted:
            # the governor evicted this session for staying pinned past its
            # stall grace: tell the client why (best effort), then cut the
            # socket so its reader unblocks and it reconnects — the durable
            # cursor makes the resume at-least-once
            service = self._server._service
            with contextlib.suppress(Exception):
                await self._send({"type": protocol.OVERLOADED, "seq": None,
                                  "evicted": True,
                                  "message": "session evicted: delivery queue "
                                             "pinned past the stall grace",
                                  "retry_after": service.overload_retry_after})
            self._writer.close()

    # ------------------------------------------------------------------ plumbing
    async def _send(self, header: dict, body: bytes = b"") -> None:
        # one frame at a time on the socket: the pump, the notifier and inline
        # control acks all write here, and drain() runs under the same lock so
        # a slow-reading client backpressures every producer equally
        async with self._write_lock:
            self._writer.write(encode_frame(
                header, body, max_frame=self._server._max_frame))
            await self._writer.drain()

    async def _send_error(self, seq, exc: BaseException, **extra) -> None:
        await self._send({"type": protocol.ERROR, "seq": seq,
                          "error": type(exc).__name__, "message": str(exc),
                          **extra})

    async def _send_overloaded(self, seq, exc: OverloadedError,
                               **extra) -> None:
        await self._send({"type": protocol.OVERLOADED, "seq": seq,
                          "message": str(exc),
                          "retry_after": exc.retry_after, **extra})

    async def drain_and_close(self) -> None:
        """Server-stop path: answer everything accepted, then cut the socket.

        A drain that times out (the client stopped reading its acks) no longer
        abandons the queued publishes *silently*: every still-unanswered seq
        gets a :class:`PublishAbandonedError` ``error`` frame (buffered,
        best-effort) and is counted in the server's ``dropped_on_stop`` stat,
        so a pipelined client's futures fail promptly instead of hanging until
        it notices the socket close.
        """
        try:
            try:
                await asyncio.wait_for(self._acks.join(),
                                       self._server._drain_timeout)
            except (Exception, asyncio.TimeoutError):
                await self._abandon_unacked()
        finally:
            self._writer.close()

    async def _abandon_unacked(self) -> None:
        """Fail every queued-but-unacked publish with a typed error frame.

        The pump is cancelled first (it may be wedged on the dead socket's
        drain), then the in-flight entry and everything still queued are
        answered with buffered writes only — no drain: if the socket is truly
        wedged the frames are lost with the connection anyway, but a client
        that merely fell behind gets them on its next read.  Service outcomes
        are still consumed (retired) so no future's exception goes
        unretrieved.
        """
        pump = self._pump_task
        if pump is not None and not pump.done():
            pump.cancel()
            try:
                await pump
            except asyncio.CancelledError:
                if not pump.cancelled():
                    raise
            except Exception:
                pass
        entries = []
        if self._inflight is not None:
            entries.append(self._inflight)
            self._inflight = None
        while not self._acks.empty():
            entries.append(self._acks.get_nowait())
            self._acks.task_done()
        error = PublishAbandonedError(
            "the server stopped before this publish was acknowledged")
        for entry in entries:
            kind, seq = entry[0], entry[1]
            with contextlib.suppress(Exception):
                self._writer.write(encode_frame(
                    {"type": protocol.ERROR, "seq": seq,
                     "error": type(error).__name__, "message": str(error)},
                    max_frame=self._server._max_frame))
            if kind in ("pub", "stream_doc"):
                self._server.dropped_on_stop += 1
            await self._retire(entry)

    async def _teardown(self) -> None:
        for task in (self._pump_task, self._notify_task):
            if task is not None and not task.done():
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    if not task.cancelled():
                        raise  # teardown itself was cancelled mid-await
                except Exception:
                    pass  # pump failures already landed on their ack futures
        # anything the cancelled pump left queued still carries service futures
        # whose outcomes must be consumed (else asyncio reports never-retrieved
        # exceptions at GC time)
        while not self._acks.empty():
            entry = self._acks.get_nowait()
            await self._retire(entry)
            self._acks.task_done()
        session = self._session
        if session is not None:
            self._server._bound.discard(session.client_id)
            if (not self._server._stopping and not session.closed
                    and not self._server._retain_sessions):
                # a plain disconnect ends the subscription contract; restored
                # sessions awaiting reconnect were never bound here, and a
                # stopping server leaves teardown to the service's own stop().
                # With retain_sessions the session stays adoptable instead, so
                # a reconnecting client resumes subscriptions and cursor
                with contextlib.suppress(SessionClosedError):
                    await session.close()
        self._server._connections.discard(self)
        self._writer.close()
        with contextlib.suppress(Exception):
            await self._writer.wait_closed()
