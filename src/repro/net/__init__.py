"""The wire layer: a TCP front end over the pub/sub service.

``protocol`` defines the length-prefixed frame format (JSON header + raw XML
body), ``server`` the asyncio TCP server mapping connections to
:class:`~repro.service.session.ClientSession`\\ s with socket-level
backpressure, and ``client`` the pipelining asyncio client library.  See
``examples/wire_demo.py`` for a runnable end-to-end demo (including reconnect
from a snapshot) and ``DESIGN.md`` for the frame format and drain semantics.
"""

from .client import (
    ConnectionClosedError,
    OverloadedError,
    RemoteError,
    WireClient,
    WireError,
    WireMatch,
    WirePublishResult,
)
from .protocol import MAX_FRAME, FrameDecoder, ProtocolError
from .server import PublishAbandonedError, SessionBusyError, WireServer

__all__ = [
    "ConnectionClosedError",
    "FrameDecoder",
    "MAX_FRAME",
    "OverloadedError",
    "ProtocolError",
    "PublishAbandonedError",
    "RemoteError",
    "SessionBusyError",
    "WireClient",
    "WireError",
    "WireMatch",
    "WirePublishResult",
    "WireServer",
]
