"""Reference (in-memory) XPath evaluation: SELECT, PEVAL, FULLEVAL, BOOLEVAL.

This module implements Definitions 3.1-3.6 of the paper directly over document trees.
It is deliberately straightforward (it materializes the whole document and recurses over
it) — it serves as the ground truth the streaming algorithms and lower-bound document
constructions are checked against.
"""

from __future__ import annotations

from typing import List

from ..xmlstream.document import XMLDocument
from ..xmlstream.node import ELEMENT, ROOT, XMLNode
from ..xpath.ast import NodeRef
from ..xpath.evalexpr import evaluate_predicate
from ..xpath.query import ATTRIBUTE as ATTRIBUTE_AXIS
from ..xpath.query import CHILD, DESCENDANT, Query, QueryNode, WILDCARD


def name_passes_node_test(name: str | None, ntest: str | None) -> bool:
    """Definition 3.1: the name passes the node test if they are equal or the test is *.

    An ``@*`` node test (attribute wildcard) passes any ``@``-prefixed name.
    """
    if ntest is None:
        return False
    if ntest == WILDCARD:
        return name is not None and not name.startswith("@")
    if ntest == "@*":
        return name is not None and name.startswith("@")
    return name == ntest


def relates_by_axis(candidate: XMLNode, context: XMLNode, axis: str | None) -> bool:
    """Definition 3.2: does ``candidate`` relate to ``context`` according to ``axis``."""
    if axis in (CHILD, ATTRIBUTE_AXIS, None):
        return candidate.parent is context
    if axis == DESCENDANT:
        return context.is_ancestor_of(candidate)
    raise ValueError(f"unknown axis {axis!r}")


def satisfies_predicate(query_node: QueryNode, document_node: XMLNode) -> bool:
    """Definition 3.3: the document node satisfies the query node's predicate."""
    predicate = query_node.predicate
    if predicate is None:
        return True

    def resolver(ref: NodeRef) -> List[str]:
        child = ref.target
        leaf = child.succession_leaf()
        selected = select(leaf, child.parent or query_node, document_node)
        return [node.string_value() for node in selected]

    return evaluate_predicate(predicate, resolver)


def select(target: QueryNode, context_node: QueryNode, context_doc_node: XMLNode) -> List[XMLNode]:
    """``SELECT(target | context_node = context_doc_node)`` per Definition 3.4.

    ``context_node`` must lie on the path from the query root to ``target`` (it is
    usually either ``target`` itself or one of its ancestors).
    """
    if target is context_node:
        return [context_doc_node]
    parent = target.parent
    if parent is None:
        raise ValueError("target must not be the query root unless it is the context")
    if parent is context_node:
        selected: List[XMLNode] = []
        for candidate in _candidates(context_doc_node, target.axis):
            if not name_passes_node_test(candidate.name, target.ntest):
                continue
            if not satisfies_predicate(target, candidate):
                continue
            selected.append(candidate)
        return selected
    # context is a higher ancestor: recurse through the parent's selection
    parent_selection = select(parent, context_node, context_doc_node)
    out: List[XMLNode] = []
    for intermediate in parent_selection:
        out.extend(select(target, parent, intermediate))
    return out


def _candidates(context: XMLNode, axis: str | None) -> List[XMLNode]:
    if axis == DESCENDANT:
        return [n for n in context.iter_descendants() if n.kind == ELEMENT]
    return [n for n in context.children if n.kind == ELEMENT]


def full_eval(query: Query, document: XMLDocument) -> List[XMLNode]:
    """``FULLEVAL(Q, D)`` per Definition 3.6: the sequence of selected output nodes."""
    root_q = query.root
    root_d = document.root
    if root_d.kind != ROOT:
        raise ValueError("document root must be of kind root")
    if not satisfies_predicate(root_q, root_d):
        return []
    return select(query.output_node(), root_q, root_d)


def bool_eval(query: Query, document: XMLDocument) -> bool:
    """``BOOLEVAL(Q, D)``: true iff the document matches the query."""
    return len(full_eval(query, document)) > 0


def full_eval_values(query: Query, document: XMLDocument) -> List[str]:
    """String values of the selected output nodes (a convenience for examples/tests)."""
    return [node.string_value() for node in full_eval(query, document)]
