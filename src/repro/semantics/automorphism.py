"""Structural query automorphisms (Definition 6.8) and subsumption analysis.

Lemma 6.9 characterizes structural subsumption between query nodes via structural query
automorphisms: a node ``u`` structurally subsumes ``v`` iff some automorphism maps ``v``
to ``u``.  We enumerate the automorphisms directly (queries are small), which gives both
the structural domination sets needed by the canonical-document construction and a test
of (structural) subsumption-freeness.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set

from ..xpath.query import CHILD, DESCENDANT, Query, QueryNode, WILDCARD

#: an automorphism is an id-keyed map from query nodes to query nodes
Automorphism = Dict[int, QueryNode]


class AutomorphismView:
    """Wrapper over the raw id-keyed map with convenience lookups."""

    def __init__(self, query: Query, mapping: Automorphism) -> None:
        self.query = query
        self._mapping = dict(mapping)

    def __call__(self, node: QueryNode) -> QueryNode:
        return self._mapping[id(node)]

    def is_identity(self) -> bool:
        return all(self._mapping[id(n)] is n for n in self.query.nodes())

    def items(self) -> List[tuple[QueryNode, QueryNode]]:
        return [(n, self._mapping[id(n)]) for n in self.query.nodes()]


def _axis_compatible(source: QueryNode, image: QueryNode, image_parent: QueryNode) -> bool:
    """Axis-preservation requirement of Definition 6.8 for one node."""
    if source.axis == CHILD or source.axis is None:
        return image.parent is image_parent and image.axis in (CHILD, None)
    if source.axis == DESCENDANT:
        return image_parent.is_ancestor_of(image)
    return image.parent is image_parent and image.axis == source.axis


def _ntest_compatible(source: QueryNode, image: QueryNode) -> bool:
    if source.ntest == WILDCARD or source.ntest is None:
        return True
    return image.ntest == source.ntest


def iter_structural_automorphisms(query: Query) -> Iterator[AutomorphismView]:
    """Enumerate all structural query automorphisms of the query."""
    nodes = query.nodes()

    def extend(index: int, mapping: Automorphism) -> Iterator[Automorphism]:
        if index == len(nodes):
            yield dict(mapping)
            return
        node = nodes[index]
        if node.is_root():
            mapping[id(node)] = query.root
            yield from extend(index + 1, mapping)
            del mapping[id(node)]
            return
        parent_image = mapping[id(node.parent)]
        candidates: List[QueryNode]
        if node.axis == DESCENDANT:
            candidates = [n for n in parent_image.iter_subtree() if n is not parent_image]
        else:
            candidates = list(parent_image.children)
        for candidate in candidates:
            if not _axis_compatible(node, candidate, parent_image):
                continue
            if not _ntest_compatible(node, candidate):
                continue
            mapping[id(node)] = candidate
            yield from extend(index + 1, mapping)
            del mapping[id(node)]

    for raw in extend(0, {}):
        yield AutomorphismView(query, raw)


def structurally_subsumes(query: Query, u: QueryNode, v: QueryNode) -> bool:
    """Lemma 6.9: ``u`` structurally subsumes ``v`` iff some automorphism maps ``v`` to ``u``."""
    for automorphism in iter_structural_automorphisms(query):
        if automorphism(v) is u:
            return True
    return False


def structural_domination_set(query: Query, u: QueryNode) -> List[QueryNode]:
    """``SDOM(u)``: all nodes that ``u`` structurally subsumes (Definition 5.15)."""
    dominated: List[QueryNode] = []
    seen: Set[int] = set()
    for automorphism in iter_structural_automorphisms(query):
        for node in query.nodes():
            if automorphism(node) is u and id(node) not in seen:
                seen.add(id(node))
                dominated.append(node)
    return dominated


def structural_domination_leaves(query: Query, u: QueryNode) -> List[QueryNode]:
    """``L_u``: the leaf nodes in the structural domination set of ``u``."""
    return [node for node in structural_domination_set(query, u) if node.is_leaf()]


def has_nontrivial_automorphism(query: Query) -> bool:
    """Whether any non-identity structural query automorphism exists."""
    for automorphism in iter_structural_automorphisms(query):
        if not automorphism.is_identity():
            return True
    return False


def nontrivial_domination_pairs(query: Query) -> List[tuple[QueryNode, QueryNode]]:
    """All ordered pairs ``(u, v)`` with ``u != v`` and ``u`` structurally subsuming ``v``."""
    pairs: List[tuple[QueryNode, QueryNode]] = []
    for automorphism in iter_structural_automorphisms(query):
        for node, image in automorphism.items():
            if image is not node:
                pairs.append((image, node))
    unique: List[tuple[QueryNode, QueryNode]] = []
    seen: Set[tuple[int, int]] = set()
    for u, v in pairs:
        key = (id(u), id(v))
        if key not in seen:
            seen.add(key)
            unique.append((u, v))
    return unique
