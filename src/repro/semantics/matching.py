"""Matchings of documents with queries (Definitions 5.8-5.11) and path matchings (8.2).

A matching maps the nodes of a query subtree into a document subtree so that the root,
axis, node-test and value constraints all hold.  Lemma 5.10 states that a document
matches a query iff a matching of the two exists; the brute-force matching finder here is
used as an independent oracle against the SELECT-based evaluator and as the verification
engine for the lower-bound document families.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..xmlstream.document import XMLDocument
from ..xmlstream.node import ELEMENT, XMLNode
from ..xpath.query import DESCENDANT, Query, QueryNode
from ..xpath.truthset import truth_set
from .evaluator import name_passes_node_test, relates_by_axis

#: A matching is a mapping from query nodes to document nodes, keyed by object identity.
Matching = Dict[int, XMLNode]


class MatchingView:
    """A convenience wrapper pairing the raw id-keyed mapping with lookup helpers."""

    def __init__(self, query: Query, assignment: Matching) -> None:
        self.query = query
        self._assignment = dict(assignment)

    def __call__(self, node: QueryNode) -> XMLNode:
        return self._assignment[id(node)]

    def get(self, node: QueryNode) -> Optional[XMLNode]:
        return self._assignment.get(id(node))

    def items(self) -> List[tuple[QueryNode, XMLNode]]:
        by_id = {id(n): n for n in self.query.nodes()}
        return [(by_id[k], v) for k, v in self._assignment.items() if k in by_id]

    def is_leaf_preserving(self) -> bool:
        """Definition 6.3: every query leaf maps to a document leaf."""
        for query_node, doc_node in self.items():
            if query_node.is_leaf() and not doc_node.is_leaf():
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pairs = ", ".join(
            f"{q.ntest or '$'}->{d.name or '$'}" for q, d in self.items()
        )
        return f"MatchingView({pairs})"


def _value_ok(query_node: QueryNode, doc_node: XMLNode, structural: bool) -> bool:
    if structural:
        return True
    return truth_set(query_node).contains(doc_node.string_value())


def _candidate_nodes(context: XMLNode, axis: Optional[str]) -> Iterator[XMLNode]:
    if axis == DESCENDANT:
        for node in context.iter_descendants():
            if node.kind == ELEMENT:
                yield node
    else:
        for node in context.children:
            if node.kind == ELEMENT:
                yield node


def iter_matchings_of_subtree(
    query_node: QueryNode,
    doc_node: XMLNode,
    *,
    structural: bool = False,
) -> Iterator[Matching]:
    """Enumerate matchings of ``doc_node`` with ``query_node`` (root-match included).

    Yields id-keyed dictionaries mapping every node of the query subtree to a document
    node of the document subtree.
    """
    if not query_node.is_root():
        if not name_passes_node_test(doc_node.name, query_node.ntest):
            return
        if not _value_ok(query_node, doc_node, structural):
            return
    elif not _value_ok(query_node, doc_node, structural):
        return

    def assign_children(children: List[QueryNode], partial: Matching) -> Iterator[Matching]:
        if not children:
            yield dict(partial)
            return
        child, *rest = children
        for candidate in _candidate_nodes(doc_node, child.axis):
            if not relates_by_axis(candidate, doc_node, child.axis):
                continue
            for sub in iter_matchings_of_subtree(child, candidate, structural=structural):
                merged = dict(partial)
                merged.update(sub)
                yield from assign_children(rest, merged)

    base: Matching = {id(query_node): doc_node}
    yield from assign_children(list(query_node.children), base)


def iter_matchings(query: Query, document: XMLDocument, *, structural: bool = False
                   ) -> Iterator[MatchingView]:
    """Enumerate matchings (or structural matchings) of the document with the query."""
    for assignment in iter_matchings_of_subtree(
        query.root, document.root, structural=structural
    ):
        yield MatchingView(query, assignment)


def find_matching(query: Query, document: XMLDocument, *, structural: bool = False
                  ) -> Optional[MatchingView]:
    """The first matching found, or ``None`` (Lemma 5.10 oracle)."""
    for matching in iter_matchings(query, document, structural=structural):
        return matching
    return None


def has_matching(query: Query, document: XMLDocument, *, structural: bool = False) -> bool:
    """Whether any matching exists."""
    return find_matching(query, document, structural=structural) is not None


def count_matchings(query: Query, document: XMLDocument, *, structural: bool = False,
                    limit: int = 10_000) -> int:
    """Number of distinct matchings (capped at ``limit`` to stay safe on adversarial input)."""
    count = 0
    for _ in iter_matchings(query, document, structural=structural):
        count += 1
        if count >= limit:
            break
    return count


def node_matches(
    query: Query,
    query_node: QueryNode,
    document: XMLDocument,
    doc_node: XMLNode,
    *,
    structural: bool = False,
) -> bool:
    """Whether ``doc_node`` matches ``query_node`` relative to the root context.

    This is Definition 5.9 with ``u = ROOT(Q)`` and ``x = ROOT(D)``: there must be a full
    matching of the document with the query mapping ``query_node`` to ``doc_node``.
    """
    for matching in iter_matchings(query, document, structural=structural):
        if matching(query_node) is doc_node:
            return True
    return False


# --------------------------------------------------------------------------- path matching
def iter_path_matchings(query_node: QueryNode, doc_node: XMLNode) -> Iterator[Matching]:
    """Enumerate path matchings of ``doc_node`` with ``query_node`` (Definition 8.2).

    A path matching only constrains the nodes on the root-to-``query_node`` path: root
    match, axis match and node-test match (values and off-path structure are ignored).
    """
    query_path = query_node.path_from_root()
    doc_path = doc_node.path_from_root()

    def extend(qi: int, di: int, partial: Matching) -> Iterator[Matching]:
        if qi == len(query_path):
            if di == len(doc_path):
                yield dict(partial)
            return
        q = query_path[qi]
        if qi == 0:
            # query root maps to document root
            partial = dict(partial)
            partial[id(q)] = doc_path[0]
            yield from extend(1, 1, partial)
            return
        axis = q.axis
        if axis == DESCENDANT:
            positions = range(di + 1, len(doc_path) + 1)
        else:
            positions = range(di + 1, di + 2)
        for pos in positions:
            if pos > len(doc_path):
                break
            candidate = doc_path[pos - 1]
            if candidate.kind != ELEMENT:
                continue
            if not name_passes_node_test(candidate.name, q.ntest):
                continue
            new_partial = dict(partial)
            new_partial[id(q)] = candidate
            yield from extend(qi + 1, pos, new_partial)

    yield from extend(0, 0, {})


def path_matches(query_node: QueryNode, doc_node: XMLNode) -> bool:
    """Whether ``doc_node`` path matches ``query_node``."""
    for _ in iter_path_matchings(query_node, doc_node):
        return True
    return False
