"""Document homomorphisms (Definition 6.1) and isomorphism checks.

A homomorphism from a subtree ``D_x`` to a subtree ``D'_x'`` preserves the root,
parent-child relationships, names and string values; a *structural* homomorphism drops
the value requirement and a *weak* homomorphism only requires value preservation at leaf
nodes.  Lemmas 6.2/6.4 let matchings be transported along homomorphisms, which is how the
lower-bound proofs show their constructed documents (do not) match the query — the same
checks back our executable verifiers.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional

from ..xmlstream.document import XMLDocument
from ..xmlstream.node import TEXT, XMLNode

#: A node mapping keyed by the id of the source node.
NodeMap = Dict[int, XMLNode]

FULL = "full"
WEAK = "weak"
STRUCTURAL = "structural"
_FLAVORS = (FULL, WEAK, STRUCTURAL)


class Homomorphism:
    """An explicit node mapping together with its verification logic."""

    def __init__(self, source_root: XMLNode, target_root: XMLNode, mapping: NodeMap,
                 flavor: str = FULL) -> None:
        if flavor not in _FLAVORS:
            raise ValueError(f"unknown homomorphism flavor {flavor!r}")
        self.source_root = source_root
        self.target_root = target_root
        self.mapping = mapping
        self.flavor = flavor

    def __call__(self, node: XMLNode) -> XMLNode:
        return self.mapping[id(node)]

    def is_valid(self) -> bool:
        """Check the Definition 6.1 requirements for this mapping."""
        return _check_mapping(self.source_root, self.target_root, self.mapping, self.flavor)

    def is_injective(self) -> bool:
        targets = [id(v) for v in self.mapping.values()]
        return len(targets) == len(set(targets))

    def is_onto(self) -> bool:
        covered = {id(v) for v in self.mapping.values()}
        all_targets = {
            id(n) for n in self.target_root.iter_descendants(include_self=True)
            if n.kind != TEXT
        }
        return all_targets <= covered

    def is_isomorphism(self) -> bool:
        """Definition 6.5: an injective and onto (full) homomorphism."""
        return self.flavor == FULL and self.is_valid() and self.is_injective() and self.is_onto()


def _relevant_nodes(root: XMLNode) -> Iterator[XMLNode]:
    """Element/root nodes of the subtree (text nodes are not mapped by homomorphisms)."""
    for node in root.iter_descendants(include_self=True):
        if node.kind != TEXT:
            yield node


def _check_mapping(source_root: XMLNode, target_root: XMLNode, mapping: NodeMap,
                   flavor: str) -> bool:
    if mapping.get(id(source_root)) is not target_root:
        return False
    for node in _relevant_nodes(source_root):
        image = mapping.get(id(node))
        if image is None:
            return False
        if node is not source_root:
            parent_image = mapping.get(id(node.parent)) if node.parent is not None else None
            if parent_image is None or image.parent is not parent_image:
                return False
        if node.name != image.name:
            return False
        if flavor == FULL and node.string_value() != image.string_value():
            return False
        if flavor == WEAK and node.is_leaf() and node.string_value() != image.string_value():
            return False
    return True


def find_homomorphism(
    source: XMLNode,
    target: XMLNode,
    *,
    flavor: str = FULL,
) -> Optional[Homomorphism]:
    """Search for a homomorphism from the subtree at ``source`` to the subtree at ``target``.

    The search is a straightforward backtracking over children; it is exponential in the
    worst case but the documents involved in the constructions are small.
    """
    if flavor not in _FLAVORS:
        raise ValueError(f"unknown homomorphism flavor {flavor!r}")

    def node_compatible(s: XMLNode, t: XMLNode) -> bool:
        if s.name != t.name:
            return False
        if flavor == FULL and s.string_value() != t.string_value():
            return False
        if flavor == WEAK and s.is_leaf() and s.string_value() != t.string_value():
            return False
        return True

    def assign(s: XMLNode, t: XMLNode) -> Optional[NodeMap]:
        if not node_compatible(s, t):
            return None
        mapping: NodeMap = {id(s): t}
        source_children = [c for c in s.children if c.kind != TEXT]
        target_children = [c for c in t.children if c.kind != TEXT]

        def place(index: int, acc: NodeMap) -> Optional[NodeMap]:
            if index == len(source_children):
                return acc
            child = source_children[index]
            for candidate in target_children:
                sub = assign(child, candidate)
                if sub is None:
                    continue
                merged = dict(acc)
                merged.update(sub)
                result = place(index + 1, merged)
                if result is not None:
                    return result
            return None

        return place(0, mapping)

    mapping = assign(source, target)
    if mapping is None:
        return None
    return Homomorphism(source, target, mapping, flavor)


def natural_homomorphism(
    source: XMLDocument,
    target: XMLDocument,
    origin_of: Callable[[XMLNode], XMLNode],
    *,
    flavor: str = WEAK,
) -> Homomorphism:
    """Build a homomorphism from an explicit origin function (used by the constructions).

    ``origin_of(node)`` returns, for each non-text node of ``source``, the node of
    ``target`` it is a copy of.  The returned object still needs ``is_valid()`` to be
    checked by the caller (the verifiers do).
    """
    mapping: NodeMap = {}
    for node in _relevant_nodes(source.root):
        mapping[id(node)] = origin_of(node)
    return Homomorphism(source.root, target.root, mapping, flavor)


def documents_isomorphic(a: XMLDocument, b: XMLDocument) -> bool:
    """Whether two documents are isomorphic (order of siblings may differ)."""
    hom = find_homomorphism(a.root, b.root, flavor=FULL)
    return hom is not None and hom.is_isomorphism()


def is_internal_node_preserving(hom: Homomorphism) -> bool:
    """Definition 6.18: internal nodes map to internal nodes and leading text children
    (the canonical 'prefix' text nodes) are preserved exactly."""
    for node in _relevant_nodes(hom.source_root):
        if node.kind == TEXT or node.is_leaf():
            continue
        image = hom(node)
        if image.is_leaf():
            return False
        node_leading = _leading_text(node)
        image_leading = _leading_text(image)
        if node_leading != image_leading:
            return False
    return True


def _leading_text(node: XMLNode) -> Optional[str]:
    if node.children and node.children[0].kind == TEXT:
        return node.children[0].text_content
    return None
