"""Serialization of documents and event streams back to XML text."""

from __future__ import annotations

from typing import Sequence

from .events import EndDocument, EndElement, Event, StartDocument, StartElement, Text
from .parse import _escape


def serialize_events(events: Sequence[Event], *, self_close_empty: bool = True) -> str:
    """Serialize an event stream (with or without the document envelope) to XML text.

    ``self_close_empty`` collapses ``<a></a>`` to ``<a/>`` which matches the paper's
    shorthand notation ``<n/>``.
    """
    parts: list[str] = []
    pending_start: str | None = None

    def flush_pending(empty: bool) -> None:
        nonlocal pending_start
        if pending_start is None:
            return
        if empty and self_close_empty:
            parts.append(f"<{pending_start}/>")
        else:
            parts.append(f"<{pending_start}>")
        pending_start = None

    for event in events:
        if isinstance(event, (StartDocument, EndDocument)):
            flush_pending(empty=False)
            continue
        if isinstance(event, StartElement):
            flush_pending(empty=False)
            pending_start = event.name
        elif isinstance(event, EndElement):
            if pending_start == event.name:
                flush_pending(empty=True)
            else:
                flush_pending(empty=False)
                parts.append(f"</{event.name}>")
        elif isinstance(event, Text):
            flush_pending(empty=False)
            parts.append(_escape(event.content))
    flush_pending(empty=False)
    return "".join(parts)


def serialize_document(document) -> str:
    """Serialize an :class:`~repro.xmlstream.document.XMLDocument` to XML text."""
    return serialize_events(document.events())
