"""Serialization of documents, event streams and token streams back to XML text."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from .events import EndDocument, EndElement, Event, StartDocument, StartElement, Text
from .parse import TOK_END, TOK_START, TOK_TEXT, Token, _escape, token_text


def serialize_events(events: Sequence[Event], *, self_close_empty: bool = True) -> str:
    """Serialize an event stream (with or without the document envelope) to XML text.

    ``self_close_empty`` collapses ``<a></a>`` to ``<a/>`` which matches the paper's
    shorthand notation ``<n/>``.
    """
    parts: list[str] = []
    pending_start: str | None = None

    def flush_pending(empty: bool) -> None:
        nonlocal pending_start
        if pending_start is None:
            return
        if empty and self_close_empty:
            parts.append(f"<{pending_start}/>")
        else:
            parts.append(f"<{pending_start}>")
        pending_start = None

    for event in events:
        if isinstance(event, (StartDocument, EndDocument)):
            flush_pending(empty=False)
            continue
        if isinstance(event, StartElement):
            flush_pending(empty=False)
            pending_start = event.name
        elif isinstance(event, EndElement):
            if pending_start == event.name:
                flush_pending(empty=True)
            else:
                flush_pending(empty=False)
                parts.append(f"</{event.name}>")
        elif isinstance(event, Text):
            flush_pending(empty=False)
            parts.append(_escape(event.content))
    flush_pending(empty=False)
    return "".join(parts)


def serialize_document(document) -> str:
    """Serialize an :class:`~repro.xmlstream.document.XMLDocument` to XML text."""
    return serialize_events(document.events())


def serialize_tokens(tokens: Iterable[Token], *,
                     self_close_empty: bool = True) -> str:
    """Serialize a zero-copy token stream back to XML text.

    The inverse of :func:`~repro.xmlstream.parse.document_tokens` up to
    representation: attribute pseudo-elements (``(TOK_START, "@name")`` + text
    + matching end, emitted nested right after their element's start token) are
    reconstructed as real attributes, text is re-escaped, and re-tokenizing the
    result yields a token stream equivalent to the input.  This is what lets
    the durable publish log store *text* for every publish — including
    pre-tokenized ones arriving via ``publish_stream`` — and replay it through
    the ordinary text path after a crash.
    """
    parts: List[str] = []
    # an element start being assembled: its name plus collected (attr, value)s
    pending: Optional[Tuple[str, List[Tuple[str, str]]]] = None

    def flush_pending(empty: bool) -> None:
        nonlocal pending
        if pending is None:
            return
        name, attrs = pending
        attr_text = "".join(
            f' {attr}="{_escape(value).replace(chr(34), "&quot;")}"'
            for attr, value in attrs)
        if empty and self_close_empty:
            parts.append(f"<{name}{attr_text}/>")
        else:
            parts.append(f"<{name}{attr_text}>")
        pending = None

    stream = iter(tokens)
    for token in stream:
        kind = token[0]
        if kind == TOK_START:
            name = token[1]
            if name.startswith("@") and pending is not None:
                # attribute pseudo-element: fold its text back into the start tag
                value_parts: List[str] = []
                for inner in stream:
                    if inner[0] == TOK_END and inner[1] == name:
                        break
                    if inner[0] == TOK_TEXT:
                        value_parts.append(token_text(inner))
                pending[1].append((name[1:], "".join(value_parts)))
            else:
                flush_pending(empty=False)
                pending = (name, [])
        elif kind == TOK_END:
            if pending is not None and pending[0] == token[1]:
                flush_pending(empty=True)
            else:
                flush_pending(empty=False)
                parts.append(f"</{token[1]}>")
        elif kind == TOK_TEXT:
            flush_pending(empty=False)
            parts.append(_escape(token_text(token)))
        # TOK_START_DOC / TOK_END_DOC carry no text
    flush_pending(empty=False)
    return "".join(parts)
