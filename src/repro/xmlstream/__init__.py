"""XML substrate: node/document trees, SAX event streams, parsing and generation.

This package implements the data model of Section 3.1.1 and the stream model of
Section 3.1.4 of the paper.
"""

from .build import MalformedStreamError, build_document, try_build_document
from .document import XMLDocument
from .events import (
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
    Text,
    compact_stream,
    element_events,
    is_well_formed,
    iter_depths,
    max_depth,
    strip_document,
    text_element_events,
    wrap_document,
)
from .generate import (
    interleave_children,
    linear_chain,
    nested_recursive,
    padded_depth_document,
    random_document,
    wide_document,
)
from .node import ATTRIBUTE, ELEMENT, ROOT, TEXT, XMLNode
from .parse import (
    DocumentFramer,
    StreamingParser,
    XMLParseError,
    parse_document,
    parse_events,
    parse_with_sax,
    tokenize,
)
from .serialize import serialize_document, serialize_events, serialize_tokens

__all__ = [
    "ATTRIBUTE",
    "ELEMENT",
    "ROOT",
    "TEXT",
    "EndDocument",
    "EndElement",
    "Event",
    "MalformedStreamError",
    "StartDocument",
    "StartElement",
    "Text",
    "XMLDocument",
    "XMLNode",
    "DocumentFramer",
    "StreamingParser",
    "XMLParseError",
    "build_document",
    "compact_stream",
    "element_events",
    "interleave_children",
    "is_well_formed",
    "iter_depths",
    "linear_chain",
    "max_depth",
    "nested_recursive",
    "padded_depth_document",
    "parse_document",
    "parse_events",
    "parse_with_sax",
    "random_document",
    "serialize_document",
    "serialize_events",
    "serialize_tokens",
    "strip_document",
    "text_element_events",
    "tokenize",
    "try_build_document",
    "wide_document",
    "wrap_document",
]
