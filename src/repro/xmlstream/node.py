"""XML node model following the XPath 2.0 / XQuery 1.0 data model subset of the paper.

Section 3.1.1 of the paper: an XML document is a rooted tree in which every node ``x`` has

* ``KIND(x)``     -- ``root``, ``element``, ``attribute`` or ``text``;
* ``NAME(x)``     -- a name (root and text nodes are unnamed);
* ``STRVAL(x)``   -- the concatenation of the text contents of the text-node descendants
                     of ``x`` in document order;
* ``DATAVAL(x)``  -- a typed value derived from ``STRVAL(x)``.

We model attributes as a special case of children (the paper handles the attribute axis as
a special case of the child axis), so an attribute node is simply an element-like node with
``kind == "attribute"`` whose single child is a text node.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

ROOT = "root"
ELEMENT = "element"
ATTRIBUTE = "attribute"
TEXT = "text"

_KINDS = (ROOT, ELEMENT, ATTRIBUTE, TEXT)


class XMLNode:
    """A node of an XML document tree.

    Nodes are mutable while a tree is being built; afterwards they are treated as
    read-only.  Parent pointers are maintained automatically by :meth:`append_child`.
    """

    __slots__ = ("kind", "name", "text_content", "children", "parent", "_strval_cache")

    def __init__(
        self,
        kind: str,
        name: Optional[str] = None,
        text_content: Optional[str] = None,
        children: Optional[Sequence["XMLNode"]] = None,
    ) -> None:
        if kind not in _KINDS:
            raise ValueError(f"unknown node kind: {kind!r}")
        if kind == TEXT and text_content is None:
            raise ValueError("text nodes require text_content")
        if kind in (ROOT, TEXT) and name is not None:
            raise ValueError(f"{kind} nodes are unnamed")
        if kind in (ELEMENT, ATTRIBUTE) and not name:
            raise ValueError(f"{kind} nodes require a name")
        self.kind = kind
        self.name = name
        self.text_content = text_content if kind == TEXT else None
        self.children: List[XMLNode] = []
        self.parent: Optional[XMLNode] = None
        self._strval_cache: Optional[str] = None
        if children:
            for child in children:
                self.append_child(child)

    # ------------------------------------------------------------------ constructors
    @classmethod
    def root(cls, children: Optional[Sequence["XMLNode"]] = None) -> "XMLNode":
        """Create a document-root node (kind ``root``)."""
        return cls(ROOT, children=children)

    @classmethod
    def element(
        cls, name: str, children: Optional[Sequence["XMLNode"]] = None
    ) -> "XMLNode":
        """Create an element node."""
        return cls(ELEMENT, name=name, children=children)

    @classmethod
    def attribute(cls, name: str, value: str) -> "XMLNode":
        """Create an attribute node.

        Following the paper's convention that the attribute axis is a special case of the
        child axis, attributes are represented uniformly as element-like children whose
        name carries an ``@`` prefix (this is also what the XML parser produces).
        """
        prefixed = name if name.startswith("@") else "@" + name
        return cls(ELEMENT, name=prefixed, children=[cls.text(value)])

    @classmethod
    def text(cls, content: str) -> "XMLNode":
        """Create a text node."""
        return cls(TEXT, text_content=content)

    # ------------------------------------------------------------------ tree building
    def append_child(self, child: "XMLNode") -> "XMLNode":
        """Append ``child`` (setting its parent pointer) and return it."""
        if self.kind == TEXT:
            raise ValueError("text nodes cannot have children")
        child.parent = self
        self.children.append(child)
        self._invalidate_strval()
        return child

    def _invalidate_strval(self) -> None:
        node: Optional[XMLNode] = self
        while node is not None:
            node._strval_cache = None
            node = node.parent

    # ------------------------------------------------------------------ properties
    def is_leaf(self) -> bool:
        """True if the node has no element/attribute children (text children ignored)."""
        return not any(c.kind in (ELEMENT, ATTRIBUTE) for c in self.children)

    def element_children(self) -> List["XMLNode"]:
        """Children of kind element or attribute (the ones relevant for matching)."""
        return [c for c in self.children if c.kind in (ELEMENT, ATTRIBUTE)]

    def string_value(self) -> str:
        """``STRVAL(x)``: concatenation of descendant text contents in document order."""
        if self.kind == TEXT:
            return self.text_content or ""
        if self._strval_cache is None:
            parts: List[str] = []
            for node in self.iter_descendants(include_self=True):
                if node.kind == TEXT:
                    parts.append(node.text_content or "")
            self._strval_cache = "".join(parts)
        return self._strval_cache

    # ------------------------------------------------------------------ traversal
    def iter_descendants(self, include_self: bool = False) -> Iterator["XMLNode"]:
        """Pre-order (document order) traversal of the subtree rooted at this node."""
        if include_self:
            yield self
        stack = list(reversed(self.children))
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def iter_ancestors(self, include_self: bool = False) -> Iterator["XMLNode"]:
        """Walk up the parent chain."""
        node: Optional[XMLNode] = self if include_self else self.parent
        while node is not None:
            yield node
            node = node.parent

    def path_from_root(self) -> List["XMLNode"]:
        """``PATH(x)``: the sequence of nodes from the document root down to this node."""
        return list(reversed(list(self.iter_ancestors(include_self=True))))

    def depth(self) -> int:
        """Number of edges from the document root to this node (root has depth 0)."""
        return sum(1 for _ in self.iter_ancestors())

    def is_ancestor_of(self, other: "XMLNode") -> bool:
        """True if this node is a proper ancestor of ``other``."""
        return any(anc is self for anc in other.iter_ancestors())

    def is_descendant_of(self, other: "XMLNode") -> bool:
        """True if this node is a proper descendant of ``other``."""
        return other.is_ancestor_of(self)

    def is_child_of(self, other: "XMLNode") -> bool:
        """True if this node's parent is ``other``."""
        return self.parent is other

    # ------------------------------------------------------------------ misc
    def subtree_size(self) -> int:
        """Number of nodes (of any kind) in the subtree rooted here, including itself."""
        return 1 + sum(1 for _ in self.iter_descendants())

    def copy(self) -> "XMLNode":
        """Deep copy of the subtree rooted at this node (parent of the copy is None)."""
        if self.kind == TEXT:
            return XMLNode.text(self.text_content or "")
        clone = XMLNode(self.kind, name=self.name)
        for child in self.children:
            clone.append_child(child.copy())
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind == TEXT:
            return f"Text({self.text_content!r})"
        if self.kind == ROOT:
            return f"Root(children={len(self.children)})"
        return f"{self.kind.capitalize()}({self.name!r}, children={len(self.children)})"
