"""XML document trees and conversions between trees and SAX event streams."""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from .events import (
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
    Text,
    compact_stream,
)
from .node import ATTRIBUTE, ELEMENT, ROOT, TEXT, XMLNode


class XMLDocument:
    """A rooted XML document tree.

    The root node is always of kind ``root``; the document's elements are its
    descendants.  A document knows how to turn itself into a stream of SAX events and how
    to report the structural metrics used throughout the paper (depth, node count).
    """

    def __init__(self, root: Optional[XMLNode] = None) -> None:
        if root is None:
            root = XMLNode.root()
        if root.kind != ROOT:
            raise ValueError("document root must be a node of kind 'root'")
        self.root = root

    # ------------------------------------------------------------------ constructors
    @classmethod
    def from_top_element(cls, element: XMLNode) -> "XMLDocument":
        """Create a document whose root has the given element as its only child."""
        root = XMLNode.root()
        root.append_child(element)
        return cls(root)

    @classmethod
    def from_events(cls, events: Sequence[Event]) -> "XMLDocument":
        """Build a document tree from a well-formed SAX event sequence."""
        from .build import build_document

        return build_document(events)

    @classmethod
    def parse(cls, text: str) -> "XMLDocument":
        """Parse XML text (compact notation of the paper or regular XML) to a document."""
        from .parse import parse_document

        return parse_document(text)

    # ------------------------------------------------------------------ conversion
    def events(self) -> List[Event]:
        """The SAX event stream representation of this document."""
        out: List[Event] = [StartDocument()]
        self._emit(self.root, out)
        out.append(EndDocument())
        return out

    def _emit(self, node: XMLNode, out: List[Event]) -> None:
        for child in node.children:
            if child.kind == TEXT:
                out.append(Text(child.text_content or ""))
            else:
                out.append(StartElement(child.name or ""))
                self._emit(child, out)
                out.append(EndElement(child.name or ""))

    def compact(self) -> str:
        """Compact angle-bracket serialization (without the ``<$>`` envelope)."""
        return compact_stream(self.events()[1:-1])

    def serialize(self) -> str:
        """Full XML text serialization."""
        from .serialize import serialize_document

        return serialize_document(self)

    # ------------------------------------------------------------------ structural metrics
    def depth(self) -> int:
        """Length of the longest root-to-leaf path (document root at depth 0)."""
        best = 0
        for node in self.iter_nodes():
            if node.kind in (ELEMENT, ATTRIBUTE):
                best = max(best, node.depth())
        return best

    def node_count(self, kinds: Sequence[str] = (ELEMENT, ATTRIBUTE)) -> int:
        """Number of nodes of the given kinds (default: element + attribute)."""
        return sum(1 for node in self.iter_nodes() if node.kind in kinds)

    def size(self) -> int:
        """Total number of nodes of any kind, including the root."""
        return self.root.subtree_size()

    def iter_nodes(self, include_root: bool = True) -> Iterator[XMLNode]:
        """Document-order traversal of all nodes."""
        return self.root.iter_descendants(include_self=include_root)

    def iter_elements(self) -> Iterator[XMLNode]:
        """Document-order traversal of element and attribute nodes."""
        for node in self.iter_nodes(include_root=False):
            if node.kind in (ELEMENT, ATTRIBUTE):
                yield node

    def top_element(self) -> Optional[XMLNode]:
        """The unique top-level element, if there is exactly one."""
        elements = self.root.element_children()
        if len(elements) == 1:
            return elements[0]
        return None

    # ------------------------------------------------------------------ comparison
    def structurally_equal(self, other: "XMLDocument") -> bool:
        """True if the two documents have identical trees (names, kinds, text, order)."""
        return _nodes_equal(self.root, other.root)

    def copy(self) -> "XMLDocument":
        """Deep copy."""
        return XMLDocument(self.root.copy())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"XMLDocument({self.compact()!r})"


def _nodes_equal(a: XMLNode, b: XMLNode) -> bool:
    if a.kind != b.kind or a.name != b.name:
        return False
    if a.kind == TEXT:
        return a.text_content == b.text_content
    if len(a.children) != len(b.children):
        return False
    return all(_nodes_equal(ca, cb) for ca, cb in zip(a.children, b.children))
