"""SAX-style event model for streaming XML processing.

The paper (Section 3.1.4) defines five event types for the stream representation of an
XML document:

1. ``startDocument()``  (denoted ``<$>``)
2. ``endDocument()``    (denoted ``</$>``)
3. ``startElement(n)``  (denoted ``<n>``)
4. ``endElement(n)``    (denoted ``</n>``)
5. ``text(alpha)``      (denoted ``alpha``)

Events are small immutable value objects.  A *stream* is any iterable of events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence


class Event:
    """Base class for all SAX events."""

    __slots__ = ()

    #: symbolic kind string, overridden by subclasses
    kind = "event"

    def compact(self) -> str:
        """Return the compact notation used throughout the paper (e.g. ``<a>``)."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class StartDocument(Event):
    """The ``startDocument()`` event, denoted ``<$>``."""

    kind = "startDocument"

    def compact(self) -> str:
        return "<$>"


@dataclass(frozen=True, slots=True)
class EndDocument(Event):
    """The ``endDocument()`` event, denoted ``</$>``."""

    kind = "endDocument"

    def compact(self) -> str:
        return "</$>"


@dataclass(frozen=True, slots=True)
class StartElement(Event):
    """The ``startElement(name)`` event, denoted ``<name>``."""

    name: str
    kind = "startElement"

    def compact(self) -> str:
        return f"<{self.name}>"


@dataclass(frozen=True, slots=True)
class EndElement(Event):
    """The ``endElement(name)`` event, denoted ``</name>``."""

    name: str
    kind = "endElement"

    def compact(self) -> str:
        return f"</{self.name}>"


@dataclass(frozen=True, slots=True)
class Text(Event):
    """The ``text(content)`` event carrying character data."""

    content: str
    kind = "text"

    def compact(self) -> str:
        return self.content


EventStream = Iterable[Event]


def compact_stream(events: EventStream) -> str:
    """Render an event stream in the paper's compact angle-bracket notation."""
    return "".join(event.compact() for event in events)


def is_well_formed(events: Sequence[Event]) -> bool:
    """Check whether an event sequence is a well-formed document stream.

    Well-formedness means: exactly one ``StartDocument`` at the beginning, exactly one
    ``EndDocument`` at the end, properly nested matching start/end element events, and no
    events outside the document envelope.
    """
    events = list(events)
    if not events:
        return False
    if not isinstance(events[0], StartDocument) or not isinstance(events[-1], EndDocument):
        return False
    stack: List[str] = []
    for i, event in enumerate(events):
        if isinstance(event, StartDocument):
            if i != 0:
                return False
        elif isinstance(event, EndDocument):
            if i != len(events) - 1:
                return False
            if stack:
                return False
        elif isinstance(event, StartElement):
            stack.append(event.name)
        elif isinstance(event, EndElement):
            if not stack or stack[-1] != event.name:
                return False
            stack.pop()
        elif isinstance(event, Text):
            continue
        else:  # pragma: no cover - defensive
            return False
    return not stack


def element_events(name: str, inner: Sequence[Event] = ()) -> List[Event]:
    """Build the event list ``<name> inner </name>``."""
    return [StartElement(name), *inner, EndElement(name)]


def text_element_events(name: str, content: str) -> List[Event]:
    """Build the event list for ``<name>content</name>``."""
    if content:
        return [StartElement(name), Text(content), EndElement(name)]
    return [StartElement(name), EndElement(name)]


def wrap_document(inner: Sequence[Event]) -> List[Event]:
    """Wrap an element event sequence in the document envelope ``<$> ... </$>``."""
    return [StartDocument(), *inner, EndDocument()]


def strip_document(events: Sequence[Event]) -> List[Event]:
    """Remove the document envelope, returning the inner element events.

    Raises ``ValueError`` if the envelope is absent.
    """
    events = list(events)
    if not events or not isinstance(events[0], StartDocument):
        raise ValueError("event stream does not start with StartDocument")
    if not isinstance(events[-1], EndDocument):
        raise ValueError("event stream does not end with EndDocument")
    return events[1:-1]


def iter_depths(events: EventStream) -> Iterator[tuple[Event, int]]:
    """Yield ``(event, depth)`` pairs.

    The document root (``StartDocument``) is at depth 0; top-level elements at depth 1.
    For an element, the depth reported for both its start and end events is the depth of
    the element itself.  ``Text`` events report the depth of their (text-node) position,
    i.e. one more than the enclosing element's depth.
    """
    depth = 0
    for event in events:
        if isinstance(event, StartDocument):
            yield event, 0
        elif isinstance(event, EndDocument):
            yield event, 0
        elif isinstance(event, StartElement):
            depth += 1
            yield event, depth
        elif isinstance(event, EndElement):
            yield event, depth
            depth -= 1
        else:
            yield event, depth + 1


def max_depth(events: EventStream) -> int:
    """Maximum *element* depth of the stream (document root at depth 0).

    Text events are ignored: they sit one level below their enclosing element but do not
    contribute to the document depth as defined in the paper (root-to-leaf element
    paths).
    """
    best = 0
    for event, depth in iter_depths(events):
        if isinstance(event, StartElement):
            best = max(best, depth)
    return best
