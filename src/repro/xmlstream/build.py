"""Build document trees from SAX event streams (the inverse of ``XMLDocument.events``)."""

from __future__ import annotations

from typing import List, Sequence

from .events import (
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
    Text,
)
from .node import XMLNode


class MalformedStreamError(ValueError):
    """Raised when an event sequence is not a well-formed document stream."""


def build_document(events: Sequence[Event]):
    """Build an :class:`~repro.xmlstream.document.XMLDocument` from a SAX event sequence.

    The sequence must be well formed: it starts with ``StartDocument``, ends with
    ``EndDocument``, and element events nest properly.

    Raises :class:`MalformedStreamError` otherwise.
    """
    from .document import XMLDocument

    events = list(events)
    if not events:
        raise MalformedStreamError("empty event stream")
    if not isinstance(events[0], StartDocument):
        raise MalformedStreamError("stream does not start with StartDocument")
    if not isinstance(events[-1], EndDocument):
        raise MalformedStreamError("stream does not end with EndDocument")

    root = XMLNode.root()
    stack: List[XMLNode] = [root]
    for i, event in enumerate(events[1:-1], start=1):
        if isinstance(event, StartElement):
            node = XMLNode.element(event.name)
            stack[-1].append_child(node)
            stack.append(node)
        elif isinstance(event, EndElement):
            if len(stack) <= 1:
                raise MalformedStreamError(f"unmatched end element at event {i}")
            open_node = stack.pop()
            if open_node.name != event.name:
                raise MalformedStreamError(
                    f"mismatched end element at event {i}: "
                    f"expected </{open_node.name}> got </{event.name}>"
                )
        elif isinstance(event, Text):
            stack[-1].append_child(XMLNode.text(event.content))
        elif isinstance(event, (StartDocument, EndDocument)):
            raise MalformedStreamError(f"document envelope event in the interior at {i}")
        else:  # pragma: no cover - defensive
            raise MalformedStreamError(f"unknown event type: {event!r}")
    if len(stack) != 1:
        raise MalformedStreamError("unterminated elements at end of stream")
    return XMLDocument(root)


def try_build_document(events: Sequence[Event]):
    """Like :func:`build_document` but returns ``None`` for malformed streams."""
    try:
        return build_document(events)
    except MalformedStreamError:
        return None
