"""Parsing of XML text into event streams and document trees.

Three front ends are provided:

* :func:`tokenize` / :func:`parse_events` -- a small hand-written parser for the compact
  angle-bracket notation used throughout the paper (``<a><b>6</b></a>``).  It understands
  start tags, end tags, empty-element tags (``<b/>``), attributes (turned into attribute
  nodes), and character data.  It skips XML declarations (``<!DOCTYPE ...>``), comments
  (``<!-- -->``) and processing instructions (``<? ?>``), which never occur in the
  paper's constructions but do occur in real documents.

* :class:`StreamingParser` -- an incremental (push) version of the same tokenizer: feed
  byte or text chunks with :meth:`~StreamingParser.feed` and receive events as soon as
  they complete, so documents larger than memory can be filtered end-to-end.  Tag,
  comment and text constructs may be split across chunk boundaries arbitrarily.

* :func:`parse_with_sax` -- an adapter that runs Python's ``xml.sax`` parser and converts
  its callbacks into our event model.  Used to check the hand-written parser against the
  standard library on well-formed inputs, and available to users who prefer strict XML.

Zero-copy token layer
---------------------

Internally the tokenizer produces flat *tokens* (plain tuples) rather than event
objects, and the :class:`~repro.xmlstream.events.Event` front ends are thin converters
on top.  Tokens exist so that hot consumers — the compiled filter bank — can process a
document without materializing per-event objects or copying character data:

* ``(TOK_START, name)`` / ``(TOK_END, name)`` for ``startElement`` / ``endElement``;
* ``(TOK_TEXT, buf, start, end)`` for character data: the text value is
  ``buf[start:end]`` and is *already unescaped* (runs containing entity references are
  the only ones materialized eagerly; the common no-``&`` run stays a view into the
  input buffer and is never copied unless a consumer actually slices it);
* ``(TOK_START_DOC,)`` / ``(TOK_END_DOC,)`` for the document envelope
  (:meth:`StreamingParser.parse_tokens` only).

The scanner itself recognizes start and end tags with a single compiled regex
alternation (:data:`_TOKEN_RE`) applied at each ``<``; comments, processing
instructions and declarations keep their dedicated (cold-path) handling so the lenient
recovery behavior — a ``<`` that never becomes markup is literal character data — is
preserved exactly.
"""

from __future__ import annotations

import codecs
import re
import xml.sax
import xml.sax.handler
from io import StringIO
from typing import Iterable, Iterator, List, Sequence, Tuple, Union

from .events import (
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
    Text,
)

#: token kinds of the zero-copy token layer (first element of every token tuple)
TOK_START = 0
TOK_END = 1
TOK_TEXT = 2
TOK_START_DOC = 3
TOK_END_DOC = 4

#: a token: ``(TOK_START, name)``, ``(TOK_END, name)``, ``(TOK_TEXT, buf, start, end)``,
#: ``(TOK_START_DOC,)`` or ``(TOK_END_DOC,)``
Token = Tuple

#: single alternation for both tag forms, tried at each ``<`` of the input.  End tags
#: tolerate trailing junk after the name (``</a junk>``), matching the historic
#: ``_TAG_RE`` behavior; attribute text cannot contain ``<`` or ``>``, so a match always
#: ends at the first ``>`` after the ``<`` — exactly the span the old scanner passed to
#: ``fullmatch``.
_TOKEN_RE = re.compile(
    r"<(?:/(?P<close>[^\s<>/]+)[^<>]*"
    r"|(?P<name>[^\s<>/!?][^\s<>/]*)(?P<attrs>[^<>]*?)(?P<selfclose>/)?)>"
)
_ATTR_RE = re.compile(r"""(?P<name>[^\s=]+)\s*=\s*(?P<quote>["'])(?P<value>.*?)(?P=quote)""")

#: matches one non-whitespace character; ``search(buf, s, e)`` is the allocation-free
#: equivalent of ``buf[s:e].strip()`` used to drop whitespace-only character runs
_NON_WS_RE = re.compile(r"\S")


class XMLParseError(ValueError):
    """Raised when XML text cannot be parsed."""


def _text_token(buf: str, start: int, end: int) -> Token:
    """Build a text token whose value is already unescaped.

    The common case — no entity reference in the run — keeps (buf, start, end) as a
    lazy view; a consumer that never reads the value never pays for a copy.
    """
    if buf.find("&", start, end) < 0:
        return (TOK_TEXT, buf, start, end)
    value = _unescape(buf[start:end])
    return (TOK_TEXT, value, 0, len(value))


def token_text(token: Token) -> str:
    """Materialize the character data of a ``TOK_TEXT`` token."""
    return token[1][token[2]:token[3]]


class _IncrementalTokenizer:
    """Chunk-friendly tokenizer producing the same events as :func:`tokenize`.

    The tokenizer holds the smallest possible amount of unconsumed input: the current
    character-data run (a run only ends when the next markup construct completes, so it
    cannot be emitted earlier without changing event boundaries) plus any construct whose
    terminator has not arrived yet.  Comments, processing instructions and declarations
    are consumed and skipped; a ``<`` that never turns into valid markup is treated as
    literal character data, mirroring the lenient one-shot tokenizer the paper's
    examples were written against.
    """

    def __init__(self) -> None:
        self._buf = ""

    def feed(self, chunk: str) -> List[Event]:
        """Consume a text chunk, returning every event that completed."""
        return [_token_to_event(t) for t in self.feed_tokens(chunk)]

    def finish(self) -> List[Event]:
        """Flush the tokenizer, returning the trailing events (end of input)."""
        return [_token_to_event(t) for t in self.finish_tokens()]

    def feed_tokens(self, chunk: str) -> List[Token]:
        """Consume a text chunk, returning every token that completed."""
        self._buf += chunk
        return self._scan(final=False)

    def finish_tokens(self) -> List[Token]:
        """Flush the tokenizer, returning the trailing tokens (end of input)."""
        return self._scan(final=True)

    # ------------------------------------------------------------------ scanning
    def _scan(self, final: bool) -> List[Token]:
        tokens: List[Token] = []
        buf = self._buf
        n = len(buf)
        pos = 0  # start of the current (unflushed) character-data run
        scan = 0  # where to look for the next '<'
        find = buf.find
        match_at = _TOKEN_RE.match
        while True:
            lt = find("<", scan)
            if lt < 0:
                if final:
                    self._flush_text(tokens, buf, pos, n)
                    pos = n
                break
            if not final and n - lt < 4 and "<!--".startswith(buf[lt:]):
                # "<", "<!", "<!-": cannot classify the construct yet
                break
            # hot path: a start or end tag, recognized by one compiled alternation
            match = match_at(buf, lt)
            if match is not None:
                self._flush_text(tokens, buf, pos, lt)
                self._emit_tag(tokens, buf, match)
                pos = scan = match.end()
                continue
            # cold path: comment / processing instruction / declaration / stray '<'
            if buf.startswith("<!--", lt):
                end = find("-->", lt + 4)
                if end < 0:
                    if final:  # unterminated comment: keep it as character data
                        self._flush_text(tokens, buf, pos, n)
                        pos = n
                    break
                self._flush_text(tokens, buf, pos, lt)
                pos = scan = end + 3
                continue
            if buf.startswith("<?", lt):
                end = find("?>", lt + 2)
                if end < 0:
                    if final:
                        self._flush_text(tokens, buf, pos, n)
                        pos = n
                    break
                self._flush_text(tokens, buf, pos, lt)
                pos = scan = end + 2
                continue
            if buf.startswith("<!", lt):
                end = self._declaration_end(buf, lt)
                if end < 0:
                    if final:
                        self._flush_text(tokens, buf, pos, n)
                        pos = n
                    break
                self._flush_text(tokens, buf, pos, lt)
                pos = scan = end
                continue
            gt = find(">", lt + 1)
            next_lt = find("<", lt + 1)
            if gt < 0 and next_lt < 0:
                if final:
                    self._flush_text(tokens, buf, pos, n)
                    pos = n
                break  # the tag may complete in the next chunk
            if next_lt >= 0 and (gt < 0 or next_lt < gt):
                # another '<' before any '>': this '<' cannot open a tag
                scan = next_lt
            else:
                scan = lt + 1  # literal '<' inside character data
        self._buf = buf[pos:]
        return tokens

    @staticmethod
    def _declaration_end(buf: str, lt: int) -> int:
        """Position after the ``>`` closing a ``<!...>`` declaration, or -1.

        Tracks ``[...]`` nesting so a DOCTYPE internal subset does not end the
        declaration early.
        """
        depth = 0
        for index in range(lt, len(buf)):
            char = buf[index]
            if char == "[":
                depth += 1
            elif char == "]":
                depth = max(depth - 1, 0)
            elif char == ">" and depth == 0:
                return index + 1
        return -1

    @staticmethod
    def _flush_text(tokens: List[Token], buf: str, start: int, end: int) -> None:
        if start >= end or _NON_WS_RE.search(buf, start, end) is None:
            return  # whitespace-only runs are dropped (paper convention)
        tokens.append(_text_token(buf, start, end))

    @staticmethod
    def _emit_tag(tokens: List[Token], buf: str, match: "re.Match[str]") -> None:
        close = match.group("close")
        if close is not None:
            tokens.append((TOK_END, close))
            return
        name = match.group("name")
        tokens.append((TOK_START, name))
        a_start, a_end = match.span("attrs")
        if a_start < a_end:
            for attr in _ATTR_RE.finditer(buf, a_start, a_end):
                attr_name = "@" + attr.group("name")
                tokens.append((TOK_START, attr_name))
                v_start, v_end = attr.span("value")
                if v_end > v_start:
                    tokens.append(_text_token(buf, v_start, v_end))
                tokens.append((TOK_END, attr_name))
        if match.group("selfclose"):
            tokens.append((TOK_END, name))


def _token_to_event(token: Token) -> Event:
    kind = token[0]
    if kind == TOK_START:
        return StartElement(token[1])
    if kind == TOK_END:
        return EndElement(token[1])
    if kind == TOK_TEXT:
        return Text(token[1][token[2]:token[3]])
    if kind == TOK_START_DOC:
        return StartDocument()
    if kind == TOK_END_DOC:
        return EndDocument()
    raise TypeError(f"unknown token {token!r}")  # pragma: no cover - defensive


def tokenize(text: str) -> List[Event]:
    """Tokenize XML text into element/text events (no document envelope).

    Whitespace-only character data between tags is dropped, matching the convention used
    in all of the paper's examples.  Character data adjacent to non-whitespace is kept
    verbatim (with entity references for ``&lt; &gt; &amp;`` decoded).  Comments,
    processing instructions and ``<!...>`` declarations are skipped.
    """
    return [_token_to_event(t) for t in tokenize_tokens(text)]


def tokenize_tokens(text: str) -> List[Token]:
    """One-shot tokenization into the zero-copy token representation."""
    tokenizer = _IncrementalTokenizer()
    tokens = tokenizer.feed_tokens(text)
    tokens.extend(tokenizer.finish_tokens())
    return tokens


def parse_events(text: str) -> List[Event]:
    """Parse XML text into a full document event stream (with the ``<$>`` envelope)."""
    return [_token_to_event(token) for token in document_tokens(text)]


def document_tokens(text: str) -> List[Token]:
    """Parse XML text into a full document *token* stream (with the envelope).

    Token-level equivalent of :func:`parse_events`: nesting is validated, and
    :class:`XMLParseError` is raised for mismatched or unclosed tags.
    """
    tokens = tokenize_tokens(text)
    _check_token_nesting(tokens)
    return [(TOK_START_DOC,), *tokens, (TOK_END_DOC,)]


def parse_document(text: str):
    """Parse XML text into an :class:`~repro.xmlstream.document.XMLDocument`."""
    from .build import build_document

    return build_document(parse_events(text))


#: chunk types accepted by :meth:`StreamingParser.feed`
Chunk = Union[str, bytes, bytearray, memoryview]


class StreamingParser:
    """Incremental (push) parser over byte or text chunks.

    Feed arbitrary chunks with :meth:`feed` and receive the events that completed; call
    :meth:`close` at end of input to validate nesting and obtain the closing events.
    The full event stream carries the same ``<$> ... </$>`` document envelope as
    :func:`parse_events`: ``StartDocument`` is emitted by the first :meth:`feed` (or by
    :meth:`close` for an empty input) and ``EndDocument`` by :meth:`close`.

    Byte chunks are decoded incrementally (UTF-8 by default), so multi-byte characters
    split across chunk boundaries are handled correctly.  Nesting is validated online:
    a mismatched closing tag raises :class:`XMLParseError` at the chunk that contains
    it, not at the end of the stream.

    The ``*_tokens`` variants expose the zero-copy token layer; the event methods are
    converters on top of them, so the two views of a stream can never disagree.
    """

    def __init__(self, *, encoding: str = "utf-8") -> None:
        self._tokenizer = _IncrementalTokenizer()
        self._decoder = codecs.getincrementaldecoder(encoding)(errors="strict")
        self._stack: List[str] = []
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------ push API
    def feed(self, chunk: Chunk) -> List[Event]:
        """Consume one chunk and return the events that completed within it."""
        return [_token_to_event(t) for t in self.feed_tokens(chunk)]

    def close(self) -> List[Event]:
        """Flush the parser, validate nesting, and return the final events."""
        return [_token_to_event(t) for t in self.close_tokens()]

    def parse(self, chunks: Iterable[Chunk]) -> Iterator[Event]:
        """Lazily parse an iterable of chunks into a full document event stream."""
        for chunk in chunks:
            yield from self.feed(chunk)
        yield from self.close()

    # ------------------------------------------------------------------ token API
    def feed_tokens(self, chunk: Chunk) -> List[Token]:
        """Consume one chunk and return the tokens that completed within it."""
        if self._closed:
            raise XMLParseError("feed() called after close()")
        if isinstance(chunk, str):
            text = chunk
        else:
            text = self._decoder.decode(bytes(chunk))
        tokens: List[Token] = []
        if not self._started:
            self._started = True
            tokens.append((TOK_START_DOC,))
        for token in self._tokenizer.feed_tokens(text):
            self._track(token)
            tokens.append(token)
        return tokens

    def close_tokens(self) -> List[Token]:
        """Flush the parser, validate nesting, and return the final tokens."""
        if self._closed:
            raise XMLParseError("close() called twice")
        self._closed = True
        tokens: List[Token] = []
        if not self._started:
            self._started = True
            tokens.append((TOK_START_DOC,))
        tail = self._decoder.decode(b"", True)
        for token in self._tokenizer.feed_tokens(tail) + self._tokenizer.finish_tokens():
            self._track(token)
            tokens.append(token)
        if self._stack:
            raise XMLParseError(f"unclosed tags: {self._stack}")
        tokens.append((TOK_END_DOC,))
        return tokens

    def parse_tokens(self, chunks: Iterable[Chunk]) -> Iterator[Token]:
        """Lazily parse an iterable of chunks into a full document token stream."""
        for chunk in chunks:
            yield from self.feed_tokens(chunk)
        yield from self.close_tokens()

    # ------------------------------------------------------------------ helpers
    def _track(self, token: Token) -> None:
        kind = token[0]
        if kind == TOK_START:
            self._stack.append(token[1])
        elif kind == TOK_END:
            if not self._stack:
                raise XMLParseError(f"unmatched closing tag </{token[1]}>")
            expected = self._stack.pop()
            if expected != token[1]:
                raise XMLParseError(
                    f"mismatched closing tag: expected </{expected}>, got </{token[1]}>"
                )


class DocumentFramer:
    """Frames a long-lived chunk stream into consecutive complete documents.

    A network connection to a pub/sub service carries *many* documents back to back
    over one byte stream; :class:`StreamingParser` is one-shot (one document envelope
    per parser).  The framer keeps an incremental tokenizer alive across documents
    and tracks element nesting: every time the depth returns to zero, the tokens
    accumulated since the previous boundary are emitted as one complete document
    token stream, wrapped in the usual ``startDocument``/``endDocument`` envelope and
    ready for any ``filter_tokens`` engine.

    Framing is by nesting, so each document must be single-rooted (the normal wire
    format; the paper's compact multi-root fragments need explicit framing by the
    transport instead).  Nesting is validated online — a mismatched closing tag
    raises :class:`XMLParseError` at the chunk that contains it — and non-whitespace
    character data *between* documents is rejected, since it belongs to no document.
    Byte chunks are decoded incrementally (UTF-8 by default), exactly as in
    :class:`StreamingParser`.
    """

    def __init__(self, *, encoding: str = "utf-8") -> None:
        self._tokenizer = _IncrementalTokenizer()
        self._decoder = codecs.getincrementaldecoder(encoding)(errors="strict")
        self._stack: List[str] = []
        self._current: List[Token] = []
        self._ready: List[List[Token]] = []  # completed, not yet handed out
        self._closed = False
        self._failed = False  # poisoned by a framing error; see feed()

    def feed(self, chunk: Chunk) -> List[List[Token]]:
        """Consume one chunk, returning every document that completed within it.

        If the chunk contains a protocol error *after* complete documents (e.g.
        ``"<a></a><b></c>"`` in one chunk), the error is raised but the completed
        documents are retained — :meth:`take_completed` salvages them, so whether
        a valid document is delivered never depends on how the transport chunked
        the bytes around a later error.

        A framing error *poisons* the framer: the nesting state is no longer
        trustworthy (the offending construct was partially consumed), so every
        later ``feed``/``close`` fails fast instead of mis-framing a malformed
        stream into "complete" documents.  Resynchronizing after a protocol
        error means starting a fresh framer on a fresh connection.
        """
        if self._closed:
            raise XMLParseError("feed() called after close()")
        if self._failed:
            raise XMLParseError(
                "the framer is unusable after a framing error; "
                "start a fresh DocumentFramer")
        if isinstance(chunk, str):
            text = chunk
        else:
            text = self._decoder.decode(bytes(chunk))
        try:
            self._collect(self._tokenizer.feed_tokens(text))
        except XMLParseError:
            self._failed = True
            raise
        ready, self._ready = self._ready, []
        return ready

    def take_completed(self) -> List[List[Token]]:
        """Documents that completed before a :meth:`feed` error was raised."""
        ready, self._ready = self._ready, []
        return ready

    def close(self) -> None:
        """Flush the framer and verify no document was left incomplete."""
        if self._closed:
            raise XMLParseError("close() called twice")
        if self._failed:
            raise XMLParseError(
                "the framer is unusable after a framing error; "
                "start a fresh DocumentFramer")
        self._closed = True
        tail = self._decoder.decode(b"", True)
        self._collect(
            self._tokenizer.feed_tokens(tail) + self._tokenizer.finish_tokens())
        if self._ready:  # pragma: no cover - a doc can only complete at a '>'
            raise XMLParseError("document completed during close()")
        if self._stack or self._current:
            raise XMLParseError(
                f"stream ended mid-document (open tags: {self._stack})")

    @property
    def mid_document(self) -> bool:
        """Whether the stream currently sits inside an incomplete document.

        True when elements are open, and also when a partial construct is still
        buffered — an unterminated tag held by the tokenizer or an undecoded
        multi-byte tail in the incremental decoder — so a transport checking
        this at connection EOF correctly classifies ``"<a"`` as truncation, not
        a clean boundary.  A pending whitespace-only character run does not
        count: it would be dropped, not lost.
        """
        if self._current or self._stack:
            return True
        if self._decoder.getstate()[0]:  # undecoded byte tail
            return True
        pending = self._tokenizer._buf
        return bool(pending) and _NON_WS_RE.search(pending) is not None

    def frame(self, chunks: Iterable[Chunk]) -> Iterator[List[Token]]:
        """Lazily frame an iterable of chunks into document token streams.

        A protocol error still surfaces as :class:`XMLParseError`, but every
        document completed before it is yielded first.
        """
        for chunk in chunks:
            try:
                documents = self.feed(chunk)
            except XMLParseError:
                yield from self.take_completed()
                raise
            yield from documents
        self.close()

    def _collect(self, tokens: Iterable[Token]) -> None:
        """Track nesting, stashing each completed document onto ``_ready``.

        Stashing (rather than returning) means documents completed earlier in a
        chunk survive a parse error raised later in the same chunk.
        """
        current = self._current
        stack = self._stack
        for token in tokens:
            kind = token[0]
            if kind == TOK_START:
                stack.append(token[1])
                current.append(token)
            elif kind == TOK_END:
                if not stack:
                    raise XMLParseError(f"unmatched closing tag </{token[1]}>")
                expected = stack.pop()
                if expected != token[1]:
                    raise XMLParseError(
                        f"mismatched closing tag: expected </{expected}>, "
                        f"got </{token[1]}>")
                current.append(token)
                if not stack:  # depth returned to zero: one document completed
                    self._ready.append(
                        [(TOK_START_DOC,), *current, (TOK_END_DOC,)])
                    current = self._current = []
            else:  # TOK_TEXT (whitespace-only runs were already dropped)
                if not stack:
                    raise XMLParseError(
                        "character data between documents: "
                        f"{token_text(token)[:40]!r}")
                current.append(token)


def _check_token_nesting(tokens: Sequence[Token]) -> None:
    stack: List[str] = []
    for token in tokens:
        kind = token[0]
        if kind == TOK_START:
            stack.append(token[1])
        elif kind == TOK_END:
            if not stack:
                raise XMLParseError(f"unmatched closing tag </{token[1]}>")
            expected = stack.pop()
            if expected != token[1]:
                raise XMLParseError(
                    f"mismatched closing tag: expected </{expected}>, got </{token[1]}>"
                )
    if stack:
        raise XMLParseError(f"unclosed tags: {stack}")


def _unescape(raw: str) -> str:
    if "&" not in raw:  # fast path: nothing to decode, no rebuild
        return raw
    return (
        raw.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", '"')
        .replace("&apos;", "'")
        .replace("&amp;", "&")
    )


def _escape(raw: str) -> str:
    if "&" not in raw and "<" not in raw and ">" not in raw:
        return raw  # fast path: nothing to encode, no rebuild
    return (
        raw.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
    )


class _SaxCollector(xml.sax.handler.ContentHandler):
    """``xml.sax`` content handler that records our event objects."""

    def __init__(self) -> None:
        super().__init__()
        self.events: List[Event] = []

    def startDocument(self) -> None:  # noqa: N802 (xml.sax API)
        self.events.append(StartDocument())

    def endDocument(self) -> None:  # noqa: N802
        self.events.append(EndDocument())

    def startElement(self, name, attrs) -> None:  # noqa: N802
        self.events.append(StartElement(name))
        for attr_name in attrs.getNames():
            self.events.append(StartElement("@" + attr_name))
            value = attrs.getValue(attr_name)
            if value:
                self.events.append(Text(value))
            self.events.append(EndElement("@" + attr_name))

    def endElement(self, name) -> None:  # noqa: N802
        self.events.append(EndElement(name))

    def characters(self, content) -> None:
        if content.strip():
            self.events.append(Text(content))


def parse_with_sax(text: str) -> List[Event]:
    """Parse XML text with the standard library's ``xml.sax`` into our event model.

    The input must be a single rooted XML element (regular XML, not the paper's compact
    multi-root fragments).  Whitespace-only character data is dropped for consistency
    with :func:`tokenize`.
    """
    collector = _SaxCollector()
    try:
        xml.sax.parse(StringIO(text), collector)
    except xml.sax.SAXParseException as exc:  # pragma: no cover - passthrough
        raise XMLParseError(str(exc)) from exc
    return collector.events
