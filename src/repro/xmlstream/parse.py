"""Parsing of XML text into event streams and document trees.

Two front ends are provided:

* :func:`tokenize` / :func:`parse_events` -- a small hand-written parser for the compact
  angle-bracket notation used throughout the paper (``<a><b>6</b></a>``).  It understands
  start tags, end tags, empty-element tags (``<b/>``), attributes (turned into attribute
  nodes), and character data.  It deliberately ignores XML declarations, comments and
  processing instructions, which never occur in the paper's constructions.

* :func:`parse_with_sax` -- an adapter that runs Python's ``xml.sax`` parser and converts
  its callbacks into our event model.  Used to check the hand-written parser against the
  standard library on well-formed inputs, and available to users who prefer strict XML.
"""

from __future__ import annotations

import re
import xml.sax
import xml.sax.handler
from io import StringIO
from typing import List, Sequence

from .events import (
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
    Text,
)

_TAG_RE = re.compile(
    r"<(?P<close>/)?(?P<name>[^\s<>/]+)(?P<attrs>[^<>]*?)(?P<selfclose>/)?>",
)
_ATTR_RE = re.compile(r"""(?P<name>[^\s=]+)\s*=\s*(?P<quote>["'])(?P<value>.*?)(?P=quote)""")


class XMLParseError(ValueError):
    """Raised when XML text cannot be parsed."""


def tokenize(text: str) -> List[Event]:
    """Tokenize XML text into element/text events (no document envelope).

    Whitespace-only character data between tags is dropped, matching the convention used
    in all of the paper's examples.  Character data adjacent to non-whitespace is kept
    verbatim (with entity references for ``&lt; &gt; &amp;`` decoded).
    """
    events: List[Event] = []
    pos = 0
    while pos < len(text):
        match = _TAG_RE.search(text, pos)
        if match is None:
            trailing = text[pos:]
            if trailing.strip():
                events.append(Text(_unescape(trailing)))
            break
        leading = text[pos : match.start()]
        if leading.strip():
            events.append(Text(_unescape(leading)))
        name = match.group("name")
        if match.group("close"):
            events.append(EndElement(name))
        else:
            events.append(StartElement(name))
            attrs_src = match.group("attrs") or ""
            for attr in _ATTR_RE.finditer(attrs_src):
                events.append(StartElement("@" + attr.group("name")))
                if attr.group("value"):
                    events.append(Text(_unescape(attr.group("value"))))
                events.append(EndElement("@" + attr.group("name")))
            if match.group("selfclose"):
                events.append(EndElement(name))
        pos = match.end()
    return events


def parse_events(text: str) -> List[Event]:
    """Parse XML text into a full document event stream (with the ``<$>`` envelope)."""
    inner = tokenize(text)
    _check_nesting(inner)
    return [StartDocument(), *inner, EndDocument()]


def parse_document(text: str):
    """Parse XML text into an :class:`~repro.xmlstream.document.XMLDocument`."""
    from .build import build_document

    return build_document(parse_events(text))


def _check_nesting(events: Sequence[Event]) -> None:
    stack: List[str] = []
    for event in events:
        if isinstance(event, StartElement):
            stack.append(event.name)
        elif isinstance(event, EndElement):
            if not stack:
                raise XMLParseError(f"unmatched closing tag </{event.name}>")
            expected = stack.pop()
            if expected != event.name:
                raise XMLParseError(
                    f"mismatched closing tag: expected </{expected}>, got </{event.name}>"
                )
    if stack:
        raise XMLParseError(f"unclosed tags: {stack}")


def _unescape(raw: str) -> str:
    return (
        raw.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", '"')
        .replace("&apos;", "'")
        .replace("&amp;", "&")
    )


def _escape(raw: str) -> str:
    return (
        raw.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
    )


class _SaxCollector(xml.sax.handler.ContentHandler):
    """``xml.sax`` content handler that records our event objects."""

    def __init__(self) -> None:
        super().__init__()
        self.events: List[Event] = []

    def startDocument(self) -> None:  # noqa: N802 (xml.sax API)
        self.events.append(StartDocument())

    def endDocument(self) -> None:  # noqa: N802
        self.events.append(EndDocument())

    def startElement(self, name, attrs) -> None:  # noqa: N802
        self.events.append(StartElement(name))
        for attr_name in attrs.getNames():
            self.events.append(StartElement("@" + attr_name))
            value = attrs.getValue(attr_name)
            if value:
                self.events.append(Text(value))
            self.events.append(EndElement("@" + attr_name))

    def endElement(self, name) -> None:  # noqa: N802
        self.events.append(EndElement(name))

    def characters(self, content) -> None:
        if content.strip():
            self.events.append(Text(content))


def parse_with_sax(text: str) -> List[Event]:
    """Parse XML text with the standard library's ``xml.sax`` into our event model.

    The input must be a single rooted XML element (regular XML, not the paper's compact
    multi-root fragments).  Whitespace-only character data is dropped for consistency
    with :func:`tokenize`.
    """
    collector = _SaxCollector()
    try:
        xml.sax.parse(StringIO(text), collector)
    except xml.sax.SAXParseException as exc:  # pragma: no cover - passthrough
        raise XMLParseError(str(exc)) from exc
    return collector.events
