"""Parsing of XML text into event streams and document trees.

Three front ends are provided:

* :func:`tokenize` / :func:`parse_events` -- a small hand-written parser for the compact
  angle-bracket notation used throughout the paper (``<a><b>6</b></a>``).  It understands
  start tags, end tags, empty-element tags (``<b/>``), attributes (turned into attribute
  nodes), and character data.  It skips XML declarations (``<!DOCTYPE ...>``), comments
  (``<!-- -->``) and processing instructions (``<? ?>``), which never occur in the
  paper's constructions but do occur in real documents.

* :class:`StreamingParser` -- an incremental (push) version of the same tokenizer: feed
  byte or text chunks with :meth:`~StreamingParser.feed` and receive events as soon as
  they complete, so documents larger than memory can be filtered end-to-end.  Tag,
  comment and text constructs may be split across chunk boundaries arbitrarily.

* :func:`parse_with_sax` -- an adapter that runs Python's ``xml.sax`` parser and converts
  its callbacks into our event model.  Used to check the hand-written parser against the
  standard library on well-formed inputs, and available to users who prefer strict XML.
"""

from __future__ import annotations

import codecs
import re
import xml.sax
import xml.sax.handler
from io import StringIO
from typing import Iterable, Iterator, List, Sequence, Union

from .events import (
    EndDocument,
    EndElement,
    Event,
    StartDocument,
    StartElement,
    Text,
)

_TAG_RE = re.compile(
    r"<(?P<close>/)?(?P<name>[^\s<>/]+)(?P<attrs>[^<>]*?)(?P<selfclose>/)?>",
)
_ATTR_RE = re.compile(r"""(?P<name>[^\s=]+)\s*=\s*(?P<quote>["'])(?P<value>.*?)(?P=quote)""")


class XMLParseError(ValueError):
    """Raised when XML text cannot be parsed."""


class _IncrementalTokenizer:
    """Chunk-friendly tokenizer producing the same events as :func:`tokenize`.

    The tokenizer holds the smallest possible amount of unconsumed input: the current
    character-data run (a run only ends when the next markup construct completes, so it
    cannot be emitted earlier without changing event boundaries) plus any construct whose
    terminator has not arrived yet.  Comments, processing instructions and declarations
    are consumed and skipped; a ``<`` that never turns into valid markup is treated as
    literal character data, mirroring the lenient one-shot tokenizer the paper's
    examples were written against.
    """

    def __init__(self) -> None:
        self._buf = ""

    def feed(self, chunk: str) -> List[Event]:
        """Consume a text chunk, returning every event that completed."""
        self._buf += chunk
        return self._scan(final=False)

    def finish(self) -> List[Event]:
        """Flush the tokenizer, returning the trailing events (end of input)."""
        return self._scan(final=True)

    # ------------------------------------------------------------------ scanning
    def _scan(self, final: bool) -> List[Event]:
        events: List[Event] = []
        buf = self._buf
        n = len(buf)
        pos = 0  # start of the current (unflushed) character-data run
        scan = 0  # where to look for the next '<'
        while True:
            lt = buf.find("<", scan)
            if lt < 0:
                if final:
                    self._flush_text(events, buf[pos:])
                    pos = n
                break
            if not final and n - lt < 4 and "<!--".startswith(buf[lt:]):
                # "<", "<!", "<!-": cannot classify the construct yet
                break
            if buf.startswith("<!--", lt):
                end = buf.find("-->", lt + 4)
                if end < 0:
                    if final:  # unterminated comment: keep it as character data
                        self._flush_text(events, buf[pos:])
                        pos = n
                    break
                self._flush_text(events, buf[pos:lt])
                pos = scan = end + 3
                continue
            if buf.startswith("<?", lt):
                end = buf.find("?>", lt + 2)
                if end < 0:
                    if final:
                        self._flush_text(events, buf[pos:])
                        pos = n
                    break
                self._flush_text(events, buf[pos:lt])
                pos = scan = end + 2
                continue
            if buf.startswith("<!", lt):
                end = self._declaration_end(buf, lt)
                if end < 0:
                    if final:
                        self._flush_text(events, buf[pos:])
                        pos = n
                    break
                self._flush_text(events, buf[pos:lt])
                pos = scan = end
                continue
            gt = buf.find(">", lt + 1)
            next_lt = buf.find("<", lt + 1)
            if gt < 0 and next_lt < 0:
                if final:
                    self._flush_text(events, buf[pos:])
                    pos = n
                break  # the tag may complete in the next chunk
            if next_lt >= 0 and (gt < 0 or next_lt < gt):
                # another '<' before any '>': this '<' cannot open a tag
                scan = next_lt
                continue
            match = _TAG_RE.fullmatch(buf, lt, gt + 1)
            if match is None:
                scan = lt + 1  # literal '<' inside character data
                continue
            self._flush_text(events, buf[pos:lt])
            self._emit_tag(events, match)
            pos = scan = gt + 1
        self._buf = buf[pos:]
        return events

    @staticmethod
    def _declaration_end(buf: str, lt: int) -> int:
        """Position after the ``>`` closing a ``<!...>`` declaration, or -1.

        Tracks ``[...]`` nesting so a DOCTYPE internal subset does not end the
        declaration early.
        """
        depth = 0
        for index in range(lt, len(buf)):
            char = buf[index]
            if char == "[":
                depth += 1
            elif char == "]":
                depth = max(depth - 1, 0)
            elif char == ">" and depth == 0:
                return index + 1
        return -1

    @staticmethod
    def _flush_text(events: List[Event], raw: str) -> None:
        if raw.strip():
            events.append(Text(_unescape(raw)))

    @staticmethod
    def _emit_tag(events: List[Event], match: "re.Match[str]") -> None:
        name = match.group("name")
        if match.group("close"):
            events.append(EndElement(name))
            return
        events.append(StartElement(name))
        attrs_src = match.group("attrs") or ""
        for attr in _ATTR_RE.finditer(attrs_src):
            events.append(StartElement("@" + attr.group("name")))
            if attr.group("value"):
                events.append(Text(_unescape(attr.group("value"))))
            events.append(EndElement("@" + attr.group("name")))
        if match.group("selfclose"):
            events.append(EndElement(name))


def tokenize(text: str) -> List[Event]:
    """Tokenize XML text into element/text events (no document envelope).

    Whitespace-only character data between tags is dropped, matching the convention used
    in all of the paper's examples.  Character data adjacent to non-whitespace is kept
    verbatim (with entity references for ``&lt; &gt; &amp;`` decoded).  Comments,
    processing instructions and ``<!...>`` declarations are skipped.
    """
    tokenizer = _IncrementalTokenizer()
    events = tokenizer.feed(text)
    events.extend(tokenizer.finish())
    return events


def parse_events(text: str) -> List[Event]:
    """Parse XML text into a full document event stream (with the ``<$>`` envelope)."""
    inner = tokenize(text)
    _check_nesting(inner)
    return [StartDocument(), *inner, EndDocument()]


def parse_document(text: str):
    """Parse XML text into an :class:`~repro.xmlstream.document.XMLDocument`."""
    from .build import build_document

    return build_document(parse_events(text))


#: chunk types accepted by :meth:`StreamingParser.feed`
Chunk = Union[str, bytes, bytearray, memoryview]


class StreamingParser:
    """Incremental (push) parser over byte or text chunks.

    Feed arbitrary chunks with :meth:`feed` and receive the events that completed; call
    :meth:`close` at end of input to validate nesting and obtain the closing events.
    The full event stream carries the same ``<$> ... </$>`` document envelope as
    :func:`parse_events`: ``StartDocument`` is emitted by the first :meth:`feed` (or by
    :meth:`close` for an empty input) and ``EndDocument`` by :meth:`close`.

    Byte chunks are decoded incrementally (UTF-8 by default), so multi-byte characters
    split across chunk boundaries are handled correctly.  Nesting is validated online:
    a mismatched closing tag raises :class:`XMLParseError` at the chunk that contains
    it, not at the end of the stream.
    """

    def __init__(self, *, encoding: str = "utf-8") -> None:
        self._tokenizer = _IncrementalTokenizer()
        self._decoder = codecs.getincrementaldecoder(encoding)(errors="strict")
        self._stack: List[str] = []
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------ push API
    def feed(self, chunk: Chunk) -> List[Event]:
        """Consume one chunk and return the events that completed within it."""
        if self._closed:
            raise XMLParseError("feed() called after close()")
        if isinstance(chunk, str):
            text = chunk
        else:
            text = self._decoder.decode(bytes(chunk))
        events: List[Event] = []
        if not self._started:
            self._started = True
            events.append(StartDocument())
        for event in self._tokenizer.feed(text):
            self._track(event)
            events.append(event)
        return events

    def close(self) -> List[Event]:
        """Flush the parser, validate nesting, and return the final events."""
        if self._closed:
            raise XMLParseError("close() called twice")
        self._closed = True
        events: List[Event] = []
        if not self._started:
            self._started = True
            events.append(StartDocument())
        tail = self._decoder.decode(b"", True)
        for event in self._tokenizer.feed(tail) + self._tokenizer.finish():
            self._track(event)
            events.append(event)
        if self._stack:
            raise XMLParseError(f"unclosed tags: {self._stack}")
        events.append(EndDocument())
        return events

    def parse(self, chunks: Iterable[Chunk]) -> Iterator[Event]:
        """Lazily parse an iterable of chunks into a full document event stream."""
        for chunk in chunks:
            yield from self.feed(chunk)
        yield from self.close()

    # ------------------------------------------------------------------ helpers
    def _track(self, event: Event) -> None:
        if isinstance(event, StartElement):
            self._stack.append(event.name)
        elif isinstance(event, EndElement):
            if not self._stack:
                raise XMLParseError(f"unmatched closing tag </{event.name}>")
            expected = self._stack.pop()
            if expected != event.name:
                raise XMLParseError(
                    f"mismatched closing tag: expected </{expected}>, got </{event.name}>"
                )


def _check_nesting(events: Sequence[Event]) -> None:
    stack: List[str] = []
    for event in events:
        if isinstance(event, StartElement):
            stack.append(event.name)
        elif isinstance(event, EndElement):
            if not stack:
                raise XMLParseError(f"unmatched closing tag </{event.name}>")
            expected = stack.pop()
            if expected != event.name:
                raise XMLParseError(
                    f"mismatched closing tag: expected </{expected}>, got </{event.name}>"
                )
    if stack:
        raise XMLParseError(f"unclosed tags: {stack}")


def _unescape(raw: str) -> str:
    return (
        raw.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", '"')
        .replace("&apos;", "'")
        .replace("&amp;", "&")
    )


def _escape(raw: str) -> str:
    return (
        raw.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
    )


class _SaxCollector(xml.sax.handler.ContentHandler):
    """``xml.sax`` content handler that records our event objects."""

    def __init__(self) -> None:
        super().__init__()
        self.events: List[Event] = []

    def startDocument(self) -> None:  # noqa: N802 (xml.sax API)
        self.events.append(StartDocument())

    def endDocument(self) -> None:  # noqa: N802
        self.events.append(EndDocument())

    def startElement(self, name, attrs) -> None:  # noqa: N802
        self.events.append(StartElement(name))
        for attr_name in attrs.getNames():
            self.events.append(StartElement("@" + attr_name))
            value = attrs.getValue(attr_name)
            if value:
                self.events.append(Text(value))
            self.events.append(EndElement("@" + attr_name))

    def endElement(self, name) -> None:  # noqa: N802
        self.events.append(EndElement(name))

    def characters(self, content) -> None:
        if content.strip():
            self.events.append(Text(content))


def parse_with_sax(text: str) -> List[Event]:
    """Parse XML text with the standard library's ``xml.sax`` into our event model.

    The input must be a single rooted XML element (regular XML, not the paper's compact
    multi-root fragments).  Whitespace-only character data is dropped for consistency
    with :func:`tokenize`.
    """
    collector = _SaxCollector()
    try:
        xml.sax.parse(StringIO(text), collector)
    except xml.sax.SAXParseException as exc:  # pragma: no cover - passthrough
        raise XMLParseError(str(exc)) from exc
    return collector.events
