"""Synthetic XML document generators.

These generators produce documents with *controlled* structural parameters — depth,
recursion depth, fan-out, text width — which are exactly the parameters the paper's
bounds are stated in.  They back the workload package and the benchmark harness.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence

from .document import XMLDocument
from .node import XMLNode


def linear_chain(names: Sequence[str], leaf_text: Optional[str] = None) -> XMLDocument:
    """A document that is a single root-to-leaf chain with the given element names."""
    if not names:
        return XMLDocument()
    top = XMLNode.element(names[0])
    current = top
    for name in names[1:]:
        current = current.append_child(XMLNode.element(name))
    if leaf_text is not None:
        current.append_child(XMLNode.text(leaf_text))
    return XMLDocument.from_top_element(top)


def nested_recursive(
    name: str,
    depth: int,
    *,
    child_factory: Optional[Callable[[int], List[XMLNode]]] = None,
) -> XMLDocument:
    """A document of ``depth`` nested elements all named ``name``.

    ``child_factory(i)`` may supply extra (non-nested) children for the element at
    nesting level ``i`` (1-based, outermost first).  This produces recursive documents
    with recursion depth ``depth`` with respect to queries such as ``//name[...]``.
    """
    top = XMLNode.element(name)
    current = top
    for level in range(1, depth + 1):
        if child_factory is not None:
            for extra in child_factory(level):
                current.append_child(extra)
        if level < depth:
            current = current.append_child(XMLNode.element(name))
    return XMLDocument.from_top_element(top)


def padded_depth_document(
    prefix_names: Sequence[str],
    padding_name: str,
    padding_depth: int,
    payload: XMLNode,
) -> XMLDocument:
    """A document whose payload element sits below ``padding_depth`` wrapper elements.

    Useful for depth sweeps: the query-relevant structure stays fixed while the document
    depth grows.
    """
    if not prefix_names:
        raise ValueError("at least one prefix element name is required")
    top = XMLNode.element(prefix_names[0])
    current = top
    for name in prefix_names[1:]:
        current = current.append_child(XMLNode.element(name))
    for _ in range(padding_depth):
        current = current.append_child(XMLNode.element(padding_name))
    current.append_child(payload)
    return XMLDocument.from_top_element(top)


def wide_document(
    top_name: str,
    child_name: str,
    width: int,
    *,
    text_for_child: Optional[Callable[[int], str]] = None,
) -> XMLDocument:
    """A shallow document with ``width`` children under a single top element."""
    top = XMLNode.element(top_name)
    for i in range(width):
        child = top.append_child(XMLNode.element(child_name))
        if text_for_child is not None:
            child.append_child(XMLNode.text(text_for_child(i)))
    return XMLDocument.from_top_element(top)


def random_document(
    rng: random.Random,
    *,
    names: Sequence[str] = ("a", "b", "c", "d", "e"),
    max_depth: int = 5,
    max_children: int = 3,
    text_probability: float = 0.4,
    text_values: Sequence[str] = ("1", "3", "6", "7", "hello", "world", ""),
) -> XMLDocument:
    """A random document, used by property-based tests.

    The shape distribution is biased toward small documents (each level has a decreasing
    chance of further children), so exhaustive cross-checking against the reference
    evaluator stays fast.
    """

    def make_element(depth: int) -> XMLNode:
        node = XMLNode.element(rng.choice(list(names)))
        if rng.random() < text_probability:
            node.append_child(XMLNode.text(rng.choice(list(text_values))))
        if depth < max_depth:
            for _ in range(rng.randint(0, max_children)):
                if rng.random() < 0.7:
                    node.append_child(make_element(depth + 1))
        return node

    return XMLDocument.from_top_element(make_element(1))


def interleave_children(document: XMLDocument, rng: random.Random) -> XMLDocument:
    """Return a copy of ``document`` with the children of every node randomly permuted.

    Queries in the paper's fragment are indifferent to sibling order (Claim 4.3), so this
    is a useful metamorphic transformation for property tests.
    """
    copy = document.copy()
    for node in copy.iter_nodes():
        rng.shuffle(node.children)
    return copy
