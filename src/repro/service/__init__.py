"""The long-lived asyncio pub/sub service layer over the filter-bank engines.

:class:`PubSubService` owns one filter bank for its lifetime and serves it to many
clients: per-client :class:`ClientSession`\\ s with session-local subscription
names, a bounded ingest queue with backpressure and batch coalescing, snapshot/
restore of the whole subscription state to JSON, worker health probing with
automatic respawn (sharded banks), and graceful drain/shutdown.  See
``examples/pubsub_server.py`` for a runnable demo and ``DESIGN.md`` for the
lifecycle, backpressure and snapshot-format notes.
"""

from .governor import (
    HARD,
    NORMAL,
    SOFT,
    GovernorSample,
    MemoryBudget,
    OverloadedError,
    ResourceGovernor,
    Transition,
)
from .server import (
    PendingPublish,
    Publishable,
    PublishResult,
    PubSubService,
    ServiceClosedError,
)
from .session import ClientSession, Notification, SessionClosedError
from .snapshot import (
    SNAPSHOT_SCHEMA,
    dump_bank,
    dumps_bank,
    load_bank,
    loads_bank,
    migrate_snapshot,
    restore_bank,
    snapshot_bank,
)

__all__ = [
    "ClientSession",
    "GovernorSample",
    "HARD",
    "MemoryBudget",
    "NORMAL",
    "Notification",
    "OverloadedError",
    "PendingPublish",
    "Publishable",
    "PublishResult",
    "PubSubService",
    "ResourceGovernor",
    "SNAPSHOT_SCHEMA",
    "SOFT",
    "ServiceClosedError",
    "SessionClosedError",
    "Transition",
    "dump_bank",
    "dumps_bank",
    "load_bank",
    "loads_bank",
    "migrate_snapshot",
    "restore_bank",
    "snapshot_bank",
]
