"""Per-client sessions of the pub/sub service.

A :class:`ClientSession` is one client's handle on a running
:class:`~repro.service.server.PubSubService`: it owns the client's subscriptions
(named *locally*; the service namespaces them as ``"<client>:<name>"`` on the
underlying bank so two clients can both call a subscription ``"news"``) and a
bounded delivery queue of :class:`Notification` objects, one per published document
that matched at least one of the client's subscriptions.

Delivery is lossy by declaration, not by accident: a slow consumer must not be able
to stall the ingest pipeline for everyone else, so when a session's delivery queue
is full the oldest notification is dropped and counted in
:attr:`ClientSession.dropped` — the standard pub/sub backpressure trade (the
*ingest* side, by contrast, is lossless and blocks publishers; see the server
module).  Consumers that keep up never lose anything.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import AsyncIterator, Dict, List, Optional, Tuple, Union

from ..xpath.parser import parse_query
from ..xpath.query import Query


@dataclass(frozen=True)
class Notification:
    """One matched document, as delivered to one client session."""

    document_id: int  #: the service-wide sequence number of the published document
    matched: Tuple[str, ...]  #: the client's local subscription names that matched
    #: True when this delivery is a crash-recovery replay the client *may* have
    #: seen before its last acknowledged cursor was written — at-least-once
    #: semantics surface re-deliveries instead of hiding them, so an idempotent
    #: consumer can branch on the flag instead of keeping its own seen-set
    duplicate: bool = False


class SessionClosedError(RuntimeError):
    """Raised when using a session that was closed (or whose service stopped)."""


#: delivery-queue sentinel enqueued at close so blocked consumers wake immediately
_CLOSE = object()


class ClientSession:
    """One connected client: local subscription names plus a delivery queue.

    Created by :meth:`~repro.service.server.PubSubService.connect`; not constructed
    directly.  All methods must be called from the service's event loop.
    """

    def __init__(self, service, client_id: str, *, queue_size: int) -> None:
        self._service = service
        self._client_id = client_id
        self._subs: Dict[str, str] = {}  # local name -> query canonical text
        # created lazily at first use: constructing an asyncio.Queue outside a
        # running loop binds it to the wrong loop on Python 3.9, and snapshot
        # restore builds sessions from synchronous code
        self._queue: Optional[asyncio.Queue] = None
        self._queue_size = max(1, queue_size)
        self._close_queued = False  # the _CLOSE sentinel sits in the queue
        self._closed = False
        self.dropped = 0  #: notifications dropped because the delivery queue was full
        #: highest document id this client durably acknowledged (0: nothing yet);
        #: deliveries at or below it are never replayed after a crash
        self.cursor = 0
        #: True when the resource governor closed this session for staying
        #: pinned past its stall grace — the wire layer cuts the connection so
        #: the client reconnects and resumes from its durable cursor
        self.evicted = False

    # ------------------------------------------------------------------ identity
    @property
    def client_id(self) -> str:
        return self._client_id

    @property
    def closed(self) -> bool:
        return self._closed

    def subscriptions(self) -> List[str]:
        """The session's local subscription names, in subscription order."""
        return list(self._subs)

    def subscription_queries(self) -> Dict[str, str]:
        """local name -> canonical XPath text (the session's snapshot record)."""
        return dict(self._subs)

    # ------------------------------------------------------------------ subscribe
    async def subscribe(self, name: str, query: Union[str, Query]) -> str:
        """Register a subscription under a session-local name.

        ``query`` may be XPath text or a parsed :class:`~repro.xpath.query.Query`.
        Returns the canonical XPath form the bank registered (what a snapshot
        records and the wire protocol acknowledges).  Raises ``ValueError`` for
        duplicate local names,
        :class:`~repro.xpath.parser.XPathSyntaxError` for unparsable text, and
        :class:`~repro.core.errors.UnsupportedQueryError` for queries outside the
        engine's fragment.  The subscription takes effect for every document
        published after this call returns (ingest-queue order).
        """
        self._check_open()
        if name in self._subs:
            raise ValueError(
                f"session {self._client_id!r} already has a subscription {name!r}")
        if isinstance(query, str):
            query = parse_query(query)
        canonical = await self._service._register(self, name, query)
        if self._closed:
            # the session closed while our register op was in flight; its
            # unregister sweep ran off a _subs snapshot that predates us, so
            # undo the registration or it would survive as an unowned orphan
            try:
                await self._service._unregister(self, name)
            except Exception:  # service stopping: the bank is going away anyway
                pass
            raise SessionClosedError(f"session {self._client_id!r} is closed")
        self._subs[name] = canonical
        return canonical

    async def unsubscribe(self, name: str) -> None:
        """Remove one of this session's subscriptions; unknown names raise KeyError."""
        self._check_open()
        if name not in self._subs:
            raise KeyError(name)
        await self._service._unregister(self, name)
        del self._subs[name]

    # ------------------------------------------------------------------ publish
    async def publish(self, document):
        """Publish through this session (see ``PubSubService.publish``)."""
        self._check_open()
        return await self._service.publish(document)

    async def publish_stream(self, chunks):
        """Publish one chunked document (see ``PubSubService.publish_stream``)."""
        self._check_open()
        return await self._service.publish_stream(chunks)

    # ------------------------------------------------------------------ delivery
    def _delivery_queue(self) -> asyncio.Queue:
        if self._queue is None:
            self._queue = asyncio.Queue(maxsize=self._queue_size)
        return self._queue

    def _deliver(self, notification: Notification) -> None:
        """Enqueue a notification, dropping the oldest one on overflow."""
        queue = self._delivery_queue()
        while True:
            try:
                queue.put_nowait(notification)
                break
            except asyncio.QueueFull:
                try:
                    evicted = queue.get_nowait()
                    if evicted is _CLOSE:  # displaced, not a lost notification
                        self._close_queued = False
                    else:
                        self.dropped += 1
                except asyncio.QueueEmpty:  # pragma: no cover - single-threaded loop
                    pass
        if self._closed and not self._close_queued:
            self._wake_consumers()  # keep the sentinel behind the newest item

    def _wake_consumers(self) -> None:
        """Enqueue the close sentinel so consumers blocked on the queue wake.

        A full queue needs no sentinel: nothing can be blocked on ``get`` while
        items are available, and once a consumer drains the queue the closed+empty
        pre-check in :meth:`next_notification` terminates it.
        """
        if self._queue is None or self._close_queued:
            return
        try:
            self._queue.put_nowait(_CLOSE)
            self._close_queued = True
        except asyncio.QueueFull:
            pass

    async def next_notification(self,
                                timeout: Optional[float] = None) -> Notification:
        """Wait for the next notification (``asyncio.TimeoutError`` on timeout).

        Raises :class:`SessionClosedError` once the session is closed *and* its
        queue has been fully drained, so a consumer loop terminates cleanly —
        including consumers already blocked here when the session closes.
        """
        queue = self._delivery_queue()
        if self._closed:
            # nothing can ever be delivered again: drain what remains without
            # blocking (a closed session must never strand a consumer, even
            # when the close sentinel could not be enqueued because the queue
            # was full at close time)
            try:
                item = queue.get_nowait()
            except asyncio.QueueEmpty:
                item = _CLOSE
        elif timeout is None:
            item = await queue.get()
        else:
            item = await asyncio.wait_for(queue.get(), timeout)
        if item is _CLOSE:
            self._close_queued = False
            self._wake_consumers()  # re-arm for any other blocked consumer
            raise SessionClosedError(f"session {self._client_id!r} is closed")
        return item

    def ack(self, document_id: int) -> None:
        """Acknowledge delivery of every match up to ``document_id``.

        Advances the session's cursor (never backwards) and, on a durable
        service, logs a cursor record to the publish WAL — after a crash,
        documents at or below the cursor are not re-delivered to this client.
        A consumer that never acks simply re-receives everything still in the
        log, flagged :attr:`Notification.duplicate`.
        """
        self._check_open()
        self._service.ack_cursor(self._client_id, document_id)

    def pending_notifications(self) -> int:
        """How many notifications are waiting in the delivery queue."""
        if self._queue is None:
            return 0
        return self._queue.qsize() - (1 if self._close_queued else 0)

    async def notifications(self) -> AsyncIterator[Notification]:
        """Iterate notifications until the session is closed and drained."""
        while True:
            try:
                yield await self.next_notification()
            except SessionClosedError:
                return

    # ------------------------------------------------------------------ lifecycle
    async def close(self) -> None:
        """Unregister every subscription and detach from the service (idempotent)."""
        if self._closed:
            return
        # flip the flag before the first await: a subscribe() interleaving with
        # the unregister round trips below must be rejected, or its registration
        # would outlive the session as an unowned orphan on the bank
        self._closed = True
        from .server import ServiceClosedError  # at module scope it would cycle

        try:
            for name in list(self._subs):
                await self._service._unregister(self, name)
        except ServiceClosedError:
            pass  # the service is stopping: the whole bank is going away anyway
        finally:
            # even if an unregister failed unexpectedly (e.g. the ingest worker
            # crashed mid-close), the session must end up detached and its
            # consumers woken — _closed is already True, so a retry would no-op
            self._subs.clear()
            self._service._detach(self)
            self._wake_consumers()

    def _shed_pending(self) -> int:
        """Drop every queued notification (governor load shedding).

        Counted into :attr:`dropped` like any lossy-oldest overflow; the
        at-least-once contract is preserved by the durable cursor — everything
        shed here is above the client's acked cursor and replays on reconnect.
        """
        if self._queue is None:
            return 0
        shed = 0
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is _CLOSE:
                self._close_queued = False
            else:
                shed += 1
        self.dropped += shed
        return shed

    def _mark_closed(self) -> None:
        """Service-side teardown: flips the flag without touching the bank."""
        self._closed = True
        self._wake_consumers()

    def _check_open(self) -> None:
        if self._closed:
            raise SessionClosedError(f"session {self._client_id!r} is closed")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ClientSession {self._client_id!r} subs={len(self._subs)} "
                f"pending={self.pending_notifications()}>")
