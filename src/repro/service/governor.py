"""The resource governor: memory-bounded operation at the service's ceiling.

The paper is about the *memory requirements* of streaming XPath evaluation, and
the engines carry an exact Theorem 8.8 bit accounting of their live state — but
an accounting nobody enforces is a dashboard, not a guarantee.  This module
turns the modeled bits (plus a process-RSS safety net) into an enforced budget
with a graduated degradation ladder:

``NORMAL``
    Everything admitted, full batch coalescing.

``SOFT`` (any usage >= its soft watermark)
    The service shrinks ingest batch coalescing to ``soft_batch_max`` (large
    batches of buffered documents are the biggest transient allocation) and
    compacts the publish log on entry, reclaiming space below retired cursors.

``HARD`` (any usage >= its hard watermark)
    New ``publish`` admissions are rejected *before* the document is assigned
    an id or WAL-logged, with a typed, retryable :class:`OverloadedError`
    carrying a ``retry_after`` hint (the wire layer ships it as a dedicated
    frame and clients honor it in their reconnect backoff).  Delivery queues
    keep their lossy-oldest drop policy — saturated consumers shed their own
    backlog — and a client whose queue stays pinned full past ``stall_grace``
    seconds is evicted.  Eviction is safe precisely because of the durable
    layer: the client's acked cursor survives in the publish log, so it resumes
    with at-least-once delivery on reconnect (DESIGN.md "Resource governance").

Downward transitions apply hysteresis: a state is left only once every usage
has fallen below ``hysteresis`` times that state's entry watermark, so the
service re-admits cleanly instead of flapping at the boundary.

The governor itself is deliberately pure: :meth:`ResourceGovernor.observe`
maps a :class:`GovernorSample` and a monotonic timestamp to a ladder state and
records transitions.  All enforcement (rejecting, shrinking, compacting,
evicting) lives in :class:`~repro.service.server.PubSubService`, which is the
only component with the authority to act.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.errors import ConfigError

#: ladder states, ordered: comparisons like ``state >= HARD`` are meaningful
NORMAL = 0
SOFT = 1
HARD = 2

STATE_NAMES = {NORMAL: "normal", SOFT: "soft", HARD: "hard"}


class OverloadedError(RuntimeError):
    """A publish (or connect) was rejected because the service is overloaded.

    Retryable by contract: the rejected operation had no effect (the document
    was never assigned an id, never WAL-logged, never enqueued), and
    ``retry_after`` is the server's hint in seconds for when to try again.
    """

    def __init__(self, message: str = "service is overloaded",
                 *, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


@dataclass(frozen=True)
class MemoryBudget:
    """Watermarks over the two usage axes the governor tracks.

    ``*_bits`` watermarks bound the *modeled* usage — the bank's
    :class:`~repro.core.compile.BankMemoryReport` bits plus a nominal per
    queued-notification charge — which moves deterministically with load.
    ``*_rss_bytes`` watermarks bound sampled process RSS, the safety net for
    everything the model does not see.  Each axis is optional, but at least
    one soft/hard pair must be set, and within a pair soft < hard.
    """

    soft_bits: Optional[int] = None
    hard_bits: Optional[int] = None
    soft_rss_bytes: Optional[int] = None
    hard_rss_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        for label, soft, hard in (
            ("bits", self.soft_bits, self.hard_bits),
            ("rss_bytes", self.soft_rss_bytes, self.hard_rss_bytes),
        ):
            if (soft is None) != (hard is None):
                raise ConfigError(
                    f"memory budget {label} watermarks must be set as a "
                    f"soft/hard pair (got soft={soft!r}, hard={hard!r})")
            if soft is not None and hard is not None:
                if soft < 1 or hard < 1:
                    raise ConfigError(
                        f"memory budget {label} watermarks must be >= 1 "
                        f"(got soft={soft!r}, hard={hard!r})")
                if soft >= hard:
                    raise ConfigError(
                        f"memory budget soft {label} watermark must be below "
                        f"the hard one (got soft={soft!r} >= hard={hard!r})")
        if self.hard_bits is None and self.hard_rss_bytes is None:
            raise ConfigError(
                "a memory budget needs at least one watermark pair "
                "(bits and/or rss_bytes)")


@dataclass(frozen=True)
class GovernorSample:
    """One usage observation, taken by the service between ingest batches."""

    modeled_bits: int = 0
    rss_bytes: Optional[int] = None
    backlog_notifications: int = 0
    queue_depth: int = 0


@dataclass
class Transition:
    """One recorded ladder transition (the soak harness's artifact rows)."""

    at: float
    from_state: str
    to_state: str
    reason: str
    modeled_bits: int
    rss_bytes: Optional[int]

    def as_dict(self) -> Dict[str, object]:
        return {
            "at": self.at,
            "from": self.from_state,
            "to": self.to_state,
            "reason": self.reason,
            "modeled_bits": self.modeled_bits,
            "rss_bytes": self.rss_bytes,
        }


class ResourceGovernor:
    """The graduated degradation ladder over a :class:`MemoryBudget`.

    Pure state machine: feed it samples via :meth:`observe`, read the ladder
    state back, and let the owning service enforce what the state implies.
    Construction validates every knob with :class:`~repro.core.errors.ConfigError`
    (see the satellite-1 contract): ``0 < hysteresis <= 1``,
    ``stall_grace >= 0``, ``retry_after > 0``, ``soft_batch_max >= 1`` and
    ``sample_interval >= 0``.
    """

    def __init__(self, budget: MemoryBudget, *,
                 hysteresis: float = 0.85,
                 stall_grace: float = 2.0,
                 retry_after: float = 1.0,
                 soft_batch_max: int = 1,
                 sample_interval: float = 0.25,
                 notification_bits: int = 512,
                 max_transitions: int = 10000) -> None:
        if not isinstance(budget, MemoryBudget):
            raise ConfigError(
                f"budget must be a MemoryBudget, got {type(budget).__name__}")
        if not 0.0 < hysteresis <= 1.0:
            raise ConfigError(
                f"hysteresis must be in (0, 1], got {hysteresis!r}")
        if stall_grace < 0:
            raise ConfigError(f"stall_grace must be >= 0, got {stall_grace!r}")
        if retry_after <= 0:
            raise ConfigError(f"retry_after must be > 0, got {retry_after!r}")
        if soft_batch_max < 1:
            raise ConfigError(
                f"soft_batch_max must be >= 1, got {soft_batch_max!r}")
        if sample_interval < 0:
            raise ConfigError(
                f"sample_interval must be >= 0, got {sample_interval!r}")
        if notification_bits < 1:
            raise ConfigError(
                f"notification_bits must be >= 1, got {notification_bits!r}")
        if max_transitions < 1:
            raise ConfigError(
                f"max_transitions must be >= 1, got {max_transitions!r}")
        self.budget = budget
        self.hysteresis = hysteresis
        self.stall_grace = stall_grace
        self.retry_after = retry_after
        self.soft_batch_max = soft_batch_max
        self.sample_interval = sample_interval
        self.notification_bits = notification_bits
        self._max_transitions = max_transitions
        self._state = NORMAL
        self._last_sample: Optional[GovernorSample] = None
        self._transitions: List[Transition] = []
        self._transitions_dropped = 0
        self.publishes_rejected = 0
        self.clients_evicted = 0
        self.compactions = 0

    # ------------------------------------------------------------------ ladder
    @property
    def state(self) -> int:
        return self._state

    @property
    def state_name(self) -> str:
        return STATE_NAMES[self._state]

    @property
    def admitting(self) -> bool:
        """Whether new publishes are admitted (everything below HARD)."""
        return self._state < HARD

    @property
    def last_sample(self) -> Optional[GovernorSample]:
        return self._last_sample

    def _watermarks(self, level: int) -> Tuple[Optional[int], Optional[int]]:
        """(bits, rss) entry watermarks of the given ladder level."""
        if level >= HARD:
            return self.budget.hard_bits, self.budget.hard_rss_bytes
        return self.budget.soft_bits, self.budget.soft_rss_bytes

    def _exceeds(self, sample: GovernorSample, level: int,
                 scale: float) -> Optional[str]:
        """Which axis (if any) sits at/above ``scale`` x the level's watermark."""
        bits_mark, rss_mark = self._watermarks(level)
        if bits_mark is not None and sample.modeled_bits >= bits_mark * scale:
            return "modeled_bits"
        if (rss_mark is not None and sample.rss_bytes is not None
                and sample.rss_bytes >= rss_mark * scale):
            return "rss_bytes"
        return None

    def observe(self, sample: GovernorSample, now: float) -> int:
        """Fold one usage sample into the ladder, recording transitions.

        Upward transitions fire as soon as a watermark is reached; downward
        ones require every usage to sit below ``hysteresis`` times the current
        state's entry watermark, and step down one level per sample so
        recovery is observable in the transition log.
        """
        state = self._state
        reason: Optional[str] = None
        while state < HARD:
            axis = self._exceeds(sample, state + 1, 1.0)
            if axis is None:
                break
            state += 1
            reason = f"{axis} >= {STATE_NAMES[state]} watermark"
        if state == self._state and state > NORMAL:
            if self._exceeds(sample, state, self.hysteresis) is None:
                state -= 1
                reason = (f"usage below {self.hysteresis:g}x the "
                          f"{STATE_NAMES[state + 1]} watermark")
        if state != self._state:
            self._record(Transition(
                at=now,
                from_state=STATE_NAMES[self._state],
                to_state=STATE_NAMES[state],
                reason=reason or "",
                modeled_bits=sample.modeled_bits,
                rss_bytes=sample.rss_bytes,
            ))
            self._state = state
        self._last_sample = sample
        return self._state

    def _record(self, transition: Transition) -> None:
        if len(self._transitions) >= self._max_transitions:
            # bounded by construction: a governor must not itself leak memory
            del self._transitions[0]
            self._transitions_dropped += 1
        self._transitions.append(transition)

    # ------------------------------------------------------------------ reporting
    def transitions(self) -> List[Transition]:
        """The recorded ladder transitions (oldest first, bounded)."""
        return list(self._transitions)

    def snapshot(self) -> Dict[str, object]:
        """Metrics/health view: current state, counters, last sample."""
        sample = self._last_sample
        return {
            "state": self.state_name,
            "publishes_rejected": self.publishes_rejected,
            "clients_evicted": self.clients_evicted,
            "compactions": self.compactions,
            "transitions": len(self._transitions) + self._transitions_dropped,
            "modeled_bits": sample.modeled_bits if sample else 0,
            "rss_bytes": sample.rss_bytes if sample else None,
            "backlog_notifications":
                sample.backlog_notifications if sample else 0,
        }


@dataclass
class _StallTracker:
    """First-seen timestamps of sessions whose delivery queue is pinned full.

    Owned by the service (it knows queue sizes and sessions); kept here so the
    grace-period arithmetic is unit-testable without an event loop.
    """

    grace: float
    pinned_since: Dict[object, float] = field(default_factory=dict)

    def update(self, pinned: Dict[object, bool], now: float) -> List[object]:
        """Fold one round of pinned flags; return sessions past the grace."""
        expired: List[object] = []
        for session, is_pinned in pinned.items():
            if not is_pinned:
                self.pinned_since.pop(session, None)
                continue
            since = self.pinned_since.setdefault(session, now)
            if now - since >= self.grace:
                expired.append(session)
        for session in list(self.pinned_since):
            if session not in pinned:
                del self.pinned_since[session]
        return expired
