"""The long-lived asyncio pub/sub service over the filter-bank engines.

:class:`PubSubService` turns the one-shot library calls (`bank.filter_*`) into a
front end a network server can sit on: clients connect, subscribe XPath queries under
session-local names, and publish XML documents; every publisher learns which
subscriptions its document matched, and every subscribed client receives a
:class:`~repro.service.session.Notification` on its session queue.  The service owns
one bank for its whole lifetime — a
:class:`~repro.core.compile.CompiledFilterBank` in-process (match-only by default) or
a :class:`~repro.core.shard.ShardedFilterBank` when ``shards`` is given — so
subscriptions enjoy incremental trie maintenance and the sharded workers stay warm
across documents.

Ordering and backpressure
-------------------------

Every mutation travels through one bounded *ingest queue*: published documents and
subscribe/unsubscribe operations alike.  That gives the service its entire
consistency story for free — a subscription is in effect for exactly the documents
published after it, registrations never interleave with an in-flight filtering call,
and when ingest outruns the engine, ``publish`` simply awaits queue space
(backpressure is lossless on the ingest side; the per-session *delivery* queues are
bounded-lossy instead, see the session module).

Batching
--------

A single ingest worker drains the queue in batches: it waits for the first item,
yields once so every already-runnable publisher gets to enqueue, then takes
everything buffered up to ``batch_max`` — an empty queue flushes immediately, so
coalescing adapts to load and never *adds* latency.  ``flush_interval`` is an
opt-in timed window on top (default off): a positive value holds the batch open
for stragglers until the deadline, trading per-batch latency for larger batches.
Each batch's run of consecutive documents is handed to the executor as *one* call
that tokenizes and filters them back to back — one thread-pool round trip (and,
for a sharded bank, one warm pipeline of broadcasts) amortized over the whole
batch instead of paid per document.  Under bursty traffic this is where the >=2x
over await-each-document throughput comes from (the service benchmark asserts it).

Recovery
--------

Before each batch the service probes the bank's health:
:meth:`~repro.core.shard.ShardedFilterBank.ensure_healthy` respawns any shard worker
that died since the last batch (counted in ``metrics()["workers_respawned"]``), so a
killed process costs one respawn, not a failed publish.  :meth:`PubSubService.snapshot`
serializes the service's sessions and their canonical query forms to a JSON-able
dict; :meth:`PubSubService.restore` rebuilds service, sessions and bank from it
without clients re-issuing a single ``subscribe``.  :meth:`PubSubService.stop` drains
the ingest queue (every accepted publish is answered), then closes the bank —
sharded workers shut down cleanly and would be respawned from the parent-side
registration records on a later start, so drain/shutdown never desynchronizes them.

Durability
----------

With ``durable_dir`` set, the service writes every accepted publish to an
append-only WAL (:class:`~repro.durable.PublishLog`) *before* admitting it to
the ingest queue, and client acknowledgements append per-session cursor
records.  :meth:`PubSubService.save_snapshot` persists the subscription
snapshot next to the log; after a crash :meth:`PubSubService.recover` rebuilds
the service and :meth:`PubSubService.start` replays the log tail above the
acked cursors, re-delivering matches at-least-once with
``Notification.duplicate`` set.  See DESIGN.md's "Durability" section for the
record format and invariants.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..core.compile import CompiledFilterBank, event_tokens
from ..core.errors import ConfigError
from ..core.shard import ShardedFilterBank
from ..durable import DEFAULT_COMPACT_THRESHOLD, LoggedDocument, PublishLog
from ..durable.wal import FSYNC_POLICIES
from ..instrument.memory import current_rss_bytes
from ..xmlstream.document import XMLDocument
from ..xmlstream.parse import StreamingParser, document_tokens
from ..xmlstream.serialize import serialize_document, serialize_tokens
from ..xpath.parser import parse_query
from ..xpath.query import Query
from .governor import (
    HARD,
    SOFT,
    GovernorSample,
    OverloadedError,
    ResourceGovernor,
    _StallTracker,
)
from .session import ClientSession, Notification
from .snapshot import SNAPSHOT_SCHEMA, migrate_snapshot

#: file names inside a durable directory
WAL_FILENAME = "publish.wal"
SNAPSHOT_FILENAME = "snapshot.json"

#: what ``publish`` accepts as one document: XML text, a parsed document, or a
#: pre-tokenized stream (list of tokens, the zero-copy layer's representation)
Publishable = Union[str, XMLDocument, list]


class ServiceClosedError(RuntimeError):
    """Raised when publishing to or subscribing on a stopped/stopping service."""


@dataclass(frozen=True)
class PublishResult:
    """The outcome of one published document, as seen by its publisher."""

    document_id: int  #: service-wide publish sequence number
    matched: Tuple[str, ...]  #: matched subscriptions as global ``client:name`` ids
    per_query_stats: dict = field(default_factory=dict, repr=False)


class PendingPublish:
    """A submitted-but-not-yet-filtered document (the pipelining handle).

    Returned by :meth:`PubSubService.submit`: the document already sits in the
    ingest queue (its ``document_id`` is assigned), but its outcome has not been
    awaited.  Front ends that pipeline — a wire server reading the next frame
    while earlier documents are still filtering — hold one handle per in-flight
    document and :meth:`wait` for them in submission order; outcomes complete in
    exactly that order because the ingest queue is the service's only pipeline.
    """

    __slots__ = ("document_id", "_future")

    def __init__(self, document_id: int, future: "asyncio.Future") -> None:
        self.document_id = document_id
        self._future = future

    def done(self) -> bool:
        """Whether the document's outcome (result or error) is already known."""
        return self._future.done()

    async def wait(self) -> PublishResult:
        """Await the document's filtering outcome (re-raises its parse error)."""
        matched, stats = await self._future
        return PublishResult(document_id=self.document_id, matched=matched,
                             per_query_stats=stats)


# ingest-queue operation tags
_OP_DOC = 0
_OP_SUB = 1
_OP_UNSUB = 2
_OP_STOP = 3


class PubSubService:
    """An asyncio publish/subscribe service owning one filter bank for its lifetime.

    Parameters
    ----------
    shards:
        ``None`` (default) runs an in-process :class:`CompiledFilterBank`; an integer
        runs a :class:`ShardedFilterBank` with that many worker processes.
    stats:
        ``False`` (default) selects the match-only fast path; ``True`` the
        statistics-accurate engine (``PublishResult.per_query_stats`` is then
        populated, keyed by global subscription id).
    queue_limit:
        Ingest queue bound — how many operations may be in flight before
        ``publish``/``subscribe`` block (the backpressure knob).
    batch_max / flush_interval:
        Batch coalescing knobs.  A batch closes when the queue momentarily
        empties or at ``batch_max`` buffered operations; with a positive
        ``flush_interval`` (default ``0.0``: off) it instead stays open for
        stragglers until that many seconds passed, trading latency for larger
        batches.  ``batch_max=1`` disables coalescing (every document pays its
        own executor round trip) — the benchmark's "single-document-call"
        baseline.
    session_queue_size:
        Per-session delivery queue bound (oldest notifications are dropped beyond
        it; see :class:`ClientSession`).
    durable_dir:
        ``None`` (default) runs in memory, exactly as before.  A directory path
        turns on the durable publish WAL: every accepted publish is logged
        *before* it is admitted to the ingest queue, client acks append cursor
        records, :meth:`save_snapshot` persists the subscription snapshot next
        to the log, and :meth:`recover` rebuilds the whole service after a
        crash, re-delivering un-acked matches at-least-once (flagged
        :attr:`~repro.service.session.Notification.duplicate`).
    fsync / fsync_interval / compact_threshold:
        WAL knobs (only meaningful with ``durable_dir``): the fsync policy
        (``'always'``/``'interval'``/``'never'``, see
        :class:`~repro.durable.WriteAheadLog`), its interval, and the log size
        beyond which an ack triggers compaction below the minimum live cursor.
    governor:
        ``None`` (default) runs unbounded, exactly as before.  A
        :class:`~repro.service.governor.ResourceGovernor` turns on the memory
        budget: between ingest batches the service samples modeled bits plus
        process RSS, walks the governor's ladder, and enforces its state —
        batch coalescing shrinks at the soft watermark, publishes are rejected
        with :class:`~repro.service.governor.OverloadedError` (before any WAL
        append) at the hard one, and sessions pinned full past the stall grace
        are evicted (safely: their durable cursor survives, see DESIGN.md's
        "Resource governance").

    All configuration is validated here, raising
    :class:`~repro.core.errors.ConfigError` on the first invalid knob — a
    misconfigured bound must fail construction, not misbehave at peak load.
    """

    def __init__(self, *, shards: Optional[int] = None, stats: bool = False,
                 queue_limit: int = 1024, batch_max: int = 32,
                 flush_interval: float = 0.0,
                 session_queue_size: int = 1024,
                 durable_dir: Optional[str] = None,
                 fsync: str = "interval", fsync_interval: float = 0.05,
                 compact_threshold: int = DEFAULT_COMPACT_THRESHOLD,
                 governor: Optional[ResourceGovernor] = None) -> None:
        if shards is not None and shards < 1:
            raise ConfigError(f"shards must be >= 1 or None, got {shards!r}")
        if queue_limit < 1:
            raise ConfigError(f"queue_limit must be >= 1, got {queue_limit!r}")
        if batch_max < 1:
            raise ConfigError("batch_max must be at least 1")
        if flush_interval < 0:
            raise ConfigError(
                f"flush_interval must be >= 0, got {flush_interval!r}")
        if session_queue_size < 1:
            raise ConfigError(
                f"session_queue_size must be >= 1, got {session_queue_size!r}")
        if fsync not in FSYNC_POLICIES:
            raise ConfigError(
                f"unknown fsync policy {fsync!r}; expected one of "
                f"{sorted(FSYNC_POLICIES)}")
        if fsync_interval <= 0:
            raise ConfigError(
                f"fsync_interval must be > 0, got {fsync_interval!r}")
        if compact_threshold < 0:
            raise ConfigError(
                f"compact_threshold must be >= 0, got {compact_threshold!r}")
        if governor is not None and not isinstance(governor, ResourceGovernor):
            raise ConfigError(
                f"governor must be a ResourceGovernor or None, "
                f"got {type(governor).__name__}")
        self._shards = shards
        self._stats = stats
        if shards is None:
            self._bank = CompiledFilterBank(stats=stats)
        else:
            self._bank = ShardedFilterBank(shards, stats=stats)
        self._queue_limit = queue_limit
        self._batch_max = batch_max
        self._flush_interval = flush_interval
        self._session_queue_size = session_queue_size
        self._durable_dir = durable_dir
        self._publog: Optional[PublishLog] = None
        if durable_dir is not None:
            os.makedirs(durable_dir, exist_ok=True)
            self._publog = PublishLog(
                os.path.join(durable_dir, WAL_FILENAME), fsync=fsync,
                fsync_interval=fsync_interval,
                compact_threshold=compact_threshold)
        self._replay: List[LoggedDocument] = []  # filled by recover()
        self._governor = governor
        self._stall = (_StallTracker(grace=governor.stall_grace)
                       if governor is not None else None)
        self._governor_next_sample = 0.0  # loop.time() of the next due sample

        self._queue: Optional[asyncio.Queue] = None
        self._worker: Optional[asyncio.Task] = None
        self._worker_queue: Optional[asyncio.Queue] = None  # queue the worker serves
        self._closing = False
        self._stopped = False

        self._sessions: Dict[str, ClientSession] = {}
        self._routes: Dict[str, Tuple[ClientSession, str]] = {}  # global -> (s, local)
        self._client_ids = itertools.count(1)
        self._doc_ids = itertools.count(1)
        self._counters = {
            "published": 0, "documents_failed": 0, "batches": 0,
            "largest_batch": 0, "notifications": 0, "workers_respawned": 0,
            "wal_appends": 0, "acks": 0, "compactions": 0,
            "replayed": 0, "replay_failed": 0,
            "publishes_rejected": 0, "clients_evicted": 0,
            "notifications_shed": 0,
        }
        self._dropped_closed = 0  # drop counts inherited from closed sessions
        self._compensations: set = set()  # keep compensation tasks referenced

    # ------------------------------------------------------------------ lifecycle
    async def start(self) -> None:
        """Start the ingest worker (idempotent) and prewarm sharded workers.

        On a service built by :meth:`recover` this is also where the WAL tail
        replays: every logged document above the replay floor is re-filtered
        and its matches re-delivered (flagged duplicate) before ``start``
        returns, so new traffic is never interleaved with recovery traffic.
        """
        self._ensure_worker()
        bank = self._bank
        if isinstance(bank, ShardedFilterBank):
            await asyncio.get_running_loop().run_in_executor(None, bank.start)
        await self._replay_wal()

    async def _replay_wal(self) -> None:
        """Re-filter the recovered WAL tail (deferred from :meth:`recover`).

        Replayed documents are *not* re-appended to the log (they are already
        in it) and their deliveries carry ``duplicate=True`` — per session,
        documents at or below the session's cursor are skipped entirely, which
        is exactly the at-least-once contract: exactly-once at or below the
        acked cursor, at-least-once above it.
        """
        replay, self._replay = self._replay, []
        if not replay:
            return
        queue = self._ensure_worker()
        loop = asyncio.get_running_loop()
        futures = []
        for logged in replay:
            future = loop.create_future()
            await queue.put((_OP_DOC, logged.text, future,
                             logged.document_id, True))
            futures.append(future)
        outcomes = await asyncio.gather(*futures, return_exceptions=True)
        for outcome in outcomes:
            if isinstance(outcome, BaseException):
                self._counters["replay_failed"] += 1
            else:
                self._counters["replayed"] += 1

    def _ensure_worker(self) -> asyncio.Queue:
        if self._stopped or self._closing:
            raise ServiceClosedError("the service is stopped")
        if self._queue is None:
            self._queue = asyncio.Queue(maxsize=self._queue_limit)
        worker = self._worker
        if worker is None or worker.done() or self._worker_queue is not self._queue:
            if worker is not None:
                if worker.done():
                    if not worker.cancelled():
                        worker.exception()  # retrieve the crash; futures saw it
                else:
                    # a crashed worker still finishing its cleanup on a retired
                    # queue: let its eventual exception be retrieved silently
                    worker.add_done_callback(
                        lambda task: task.cancelled() or task.exception())
            self._worker = asyncio.get_running_loop().create_task(
                self._ingest_loop(self._queue), name="pubsub-ingest")
            self._worker_queue = self._queue
        return self._queue

    async def stop(self) -> None:
        """Drain the ingest queue, stop the worker, and close the bank (idempotent).

        Every operation accepted before ``stop`` is fully processed — publishers get
        their results, subscribers their notifications — before the bank is closed.
        New operations raise :class:`ServiceClosedError` as soon as ``stop`` begins.
        """
        if self._stopped:
            return
        self._closing = True
        worker, queue = self._worker, self._queue
        if worker is not None:
            # await the worker even when the queue was retired by a crash —
            # this retrieves the crash exception (else asyncio reports it as
            # never-retrieved at GC time) and waits out any in-flight cleanup
            try:
                if not worker.done() and queue is not None:
                    await queue.put((_OP_STOP,))
                await worker
            except Exception:
                # an ingest-loop crash already failed its in-flight futures;
                # swallowing it here (after retrieval) lets shutdown finish —
                # sessions still get marked closed and the bank still closes
                pass
        if queue is not None:
            # safety net: anything still queued (a worker that previously
            # crashed, for instance) is answered with a closed error, not a hang
            await self._drain_failing(
                queue, ServiceClosedError("the service is stopped"))
        self._stopped = True
        for session in list(self._sessions.values()):
            session._mark_closed()
            self._dropped_closed += session.dropped
        self._sessions.clear()
        self._routes.clear()
        bank = self._bank
        if isinstance(bank, ShardedFilterBank):
            await asyncio.get_running_loop().run_in_executor(None, bank.close)
        if self._publog is not None:
            self._publog.close()

    async def __aenter__(self) -> "PubSubService":
        await self.start()
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.stop()

    # ------------------------------------------------------------------ sessions
    async def connect(self, client_id: Optional[str] = None) -> ClientSession:
        """Open a client session.  ``client_id`` defaults to a fresh ``c<n>`` id."""
        if self._closing or self._stopped:
            raise ServiceClosedError("the service is stopped")
        if client_id is None:
            client_id = f"c{next(self._client_ids)}"
            while client_id in self._sessions:  # pragma: no cover - defensive
                client_id = f"c{next(self._client_ids)}"
        elif ":" in client_id:
            # ':' separates client id from local name in global bank names; a
            # colon inside the id would make ids collide across sessions
            # (client 'a' + local 'b:c' vs client 'a:b' + local 'c')
            raise ValueError(f"client id {client_id!r} must not contain ':'")
        elif client_id in self._sessions:
            raise ValueError(f"a session named {client_id!r} is already connected")
        session = ClientSession(self, client_id,
                                queue_size=self._session_queue_size)
        if self._publog is not None:
            # a returning client resumes at its last logged cursor even when
            # no snapshot recorded the session (e.g. reconnect after recover()
            # from the WAL alone)
            session.cursor = self._publog.cursor(client_id)
        self._sessions[client_id] = session
        return session

    def session(self, client_id: str) -> ClientSession:
        """The connected session with the given id (KeyError if unknown)."""
        return self._sessions[client_id]

    def sessions(self) -> List[ClientSession]:
        """Every connected session, in connection order."""
        return list(self._sessions.values())

    def _detach(self, session: ClientSession) -> None:
        if self._sessions.pop(session.client_id, None) is not None:
            # keep the aggregate drop counter monotonic across session churn
            self._dropped_closed += session.dropped

    @staticmethod
    def _global_name(client_id: str, local: str) -> str:
        return f"{client_id}:{local}"

    @staticmethod
    def _applied(future: "asyncio.Future") -> bool:
        """Did the worker already apply this op? (despite our own cancellation)"""
        return (future.done() and not future.cancelled()
                and future.exception() is None)

    async def _register(self, session: ClientSession, local: str,
                        query: Query) -> str:
        queue = self._ensure_worker()
        global_name = self._global_name(session.client_id, local)
        future = asyncio.get_running_loop().create_future()
        await queue.put((_OP_SUB, global_name, query, future))
        try:
            canonical = await future
        except asyncio.CancelledError:
            # cancelled between the worker's set_result and our resumption: the
            # registration exists but the caller will never record it — undo it
            # in the background or it would filter documents forever, unowned
            if self._applied(future):
                task = asyncio.get_running_loop().create_task(
                    self._compensate_unregister(global_name))
                self._compensations.add(task)
                task.add_done_callback(self._compensations.discard)
            raise
        self._routes[global_name] = (session, local)
        return canonical

    async def _compensate_unregister(self, global_name: str) -> None:
        try:
            queue = self._ensure_worker()
            future = asyncio.get_running_loop().create_future()
            await queue.put((_OP_UNSUB, global_name, future))
            await future
        except Exception:
            pass  # service stopping: the whole bank is going away anyway

    async def _unregister(self, session: ClientSession, local: str) -> None:
        queue = self._ensure_worker()
        global_name = self._global_name(session.client_id, local)
        future = asyncio.get_running_loop().create_future()
        await queue.put((_OP_UNSUB, global_name, future))
        try:
            await future
        except asyncio.CancelledError:
            if self._applied(future):
                # the bank entry is gone; complete the caller-side bookkeeping
                # too, or a later close() would try to unregister it again
                self._routes.pop(global_name, None)
                session._subs.pop(local, None)
            raise
        self._routes.pop(global_name, None)

    # ------------------------------------------------------------------ publishing
    async def submit(self, document: Publishable) -> PendingPublish:
        """Enqueue one document and return without awaiting its outcome.

        The pipelining primitive under :meth:`publish`: the await covers only
        ingest-queue admission (the backpressure point — a full queue throttles
        the submitter), so a front end can keep accepting new documents while
        earlier ones filter, holding one :class:`PendingPublish` per in-flight
        document.  Outcomes complete in submission order.
        """
        queue = self._ensure_worker()
        future = asyncio.get_running_loop().create_future()
        document, doc_id = self._admit(document)
        await queue.put((_OP_DOC, document, future, doc_id, False))
        return PendingPublish(doc_id, future)

    def _admit(self, document: Publishable) -> Tuple[Publishable, int]:
        """Assign the document id and (durably) log the publish, atomically.

        Runs on the event loop with no await between the id draw and the WAL
        append, so the log's document records are in document-id order.  The
        WAL write happens *before* ingest-queue admission: once a publisher's
        ``submit`` returns, a crash can no longer lose the document.

        The governor's hard-watermark rejection happens *first*: a rejected
        document is never assigned an id and never reaches the WAL, so
        ``OverloadedError`` guarantees "no effect" — the invariant the
        overload fault-injection round asserts.
        """
        governor = self._governor
        if governor is not None and not governor.admitting:
            governor.publishes_rejected += 1
            self._counters["publishes_rejected"] += 1
            raise OverloadedError(retry_after=governor.retry_after)
        if self._publog is None:
            return document, next(self._doc_ids)
        if isinstance(document, str):
            text = document
        elif isinstance(document, XMLDocument):
            text = serialize_document(document)
        else:
            if not isinstance(document, list):
                # a one-shot token iterator would be consumed by serialization
                document = list(document)
            text = serialize_tokens(document)
        doc_id = next(self._doc_ids)
        self._publog.append_document(doc_id, text)
        self._counters["wal_appends"] += 1
        return document, doc_id

    async def publish(self, document: Publishable) -> PublishResult:
        """Publish one document and await its filtering outcome.

        Accepts XML text, an :class:`XMLDocument`, or a pre-tokenized list.  Blocks
        (asynchronously) while the ingest queue is full — publishers are throttled
        to engine speed rather than queueing unboundedly.  Malformed documents
        raise their parse error here, without affecting other in-flight documents.
        """
        pending = await self.submit(document)
        return await pending.wait()

    async def publish_many(self, documents: Iterable[Publishable]
                           ) -> List[PublishResult]:
        """Publish a burst of documents, awaiting all their outcomes at once.

        Semantically identical to awaiting :meth:`publish` per document, but the
        whole burst is enqueued from one coroutine — no task per document — so the
        ingest worker sees the burst back to back and coalesces it into full
        batches.  Enqueueing still honors the queue bound: once the ingest queue
        fills, enqueueing overlaps with the worker draining it (pipelining, not
        unbounded buffering).  Results come back in publish order; a document that
        failed to parse carries its exception, raised on access via
        :func:`asyncio.Future.result` semantics — here, re-raised immediately, so
        a malformed document in a burst raises after the whole burst settled.
        """
        queue = self._ensure_worker()
        loop = asyncio.get_running_loop()
        entries = []
        overload: Optional[OverloadedError] = None
        for document in documents:
            future = loop.create_future()
            try:
                document, doc_id = self._admit(document)
            except OverloadedError as exc:
                # the burst hit the hard watermark mid-way: everything already
                # admitted is processed (and settled below, so a failed parse
                # in it is still retrieved), the rest is rejected as a unit
                overload = exc
                break
            await queue.put((_OP_DOC, document, future, doc_id, False))
            entries.append((doc_id, future))
        if entries:
            await asyncio.gather(*(future for _id, future in entries),
                                 return_exceptions=True)
        if overload is not None:
            raise overload
        results = []
        for doc_id, future in entries:
            matched, stats = future.result()  # re-raises a failed document's error
            results.append(PublishResult(document_id=doc_id, matched=matched,
                                         per_query_stats=stats))
        return results

    async def publish_stream(self, chunks) -> PublishResult:
        """Publish one document arriving as (optionally async) byte/text chunks.

        The chunks are tokenized incrementally as they arrive — a network-sized
        chunk costs one ``feed_tokens`` call and the document is never materialized
        as a single string — and the completed token stream is then published like
        any other document.
        """
        parser = StreamingParser()
        tokens: list = []
        if hasattr(chunks, "__aiter__"):
            async for chunk in chunks:
                tokens.extend(parser.feed_tokens(chunk))
        else:
            for chunk in chunks:
                tokens.extend(parser.feed_tokens(chunk))
        tokens.extend(parser.close_tokens())
        return await self.publish(tokens)

    # ------------------------------------------------------------------ the worker
    async def _ingest_loop(self, queue: asyncio.Queue) -> None:
        batch: List[tuple] = []
        try:
            await self._ingest_until_stopped(queue, batch)
        except BaseException as exc:
            # an unexpected failure (e.g. a respawn hitting EMFILE inside the
            # health probe) must never strand publishers awaiting their futures.
            # Retire the queue first — operations arriving from now on build a
            # fresh queue + worker — then fail the in-flight batch and every op
            # on the retired queue (including ones from putters we wake while
            # draining), and re-raise so the task records the crash.
            if self._queue is queue:
                self._queue = None
            failure = RuntimeError(f"ingest worker crashed: {exc!r}")
            failure.__cause__ = exc if isinstance(exc, Exception) else None
            for op in batch:
                self._fail_op(op, failure)
            await self._drain_failing(queue, failure)
            raise

    @staticmethod
    async def _drain_failing(queue: asyncio.Queue, error: BaseException) -> None:
        """Fail everything queued, *including* ops from publishers that were
        blocked on a full queue: each drained item frees a slot and wakes a
        putter, whose op only lands after a scheduling tick — so keep draining
        until one tick passes with the queue still empty."""
        while True:
            while not queue.empty():
                PubSubService._fail_op(queue.get_nowait(), error)
            await asyncio.sleep(0)
            if queue.empty():
                return

    @staticmethod
    def _fail_op(op: tuple, error: BaseException) -> None:
        if op[0] == _OP_DOC or op[0] == _OP_UNSUB:
            future = op[2]
        elif op[0] == _OP_SUB:
            future = op[3]
        else:  # _OP_STOP carries no future
            return
        if not future.done():
            future.set_exception(error)

    async def _ingest_until_stopped(self, queue: asyncio.Queue,
                                    batch: List[tuple]) -> None:
        loop = asyncio.get_running_loop()
        flush = self._flush_interval
        stopping = False
        while True:
            # re-read per batch: the governor shrinks coalescing at the soft
            # watermark (large batches of buffered documents are the biggest
            # transient allocation) and restores it on recovery
            batch_max = self._effective_batch_max()
            if stopping:
                # the STOP marker can overtake publishers blocked on a full
                # queue (their put was accepted before stop() was called, so
                # they must still be answered): keep draining without blocking
                # until a scheduling tick leaves the queue empty — each drained
                # item frees a slot, and the freed putter runs before our next
                # sleep(0) resumes, so nothing accepted can be stranded
                await asyncio.sleep(0)
                if queue.empty():
                    break
                batch.append(queue.get_nowait())
            else:
                governor = self._governor
                if governor is not None and governor.sample_interval > 0:
                    # a governed worker must keep sampling while idle: at the
                    # hard watermark every publish is rejected before it can
                    # form a batch, so recovery (and stalled-session eviction)
                    # cannot depend on an admitted op arriving to trigger it
                    try:
                        batch.append(await asyncio.wait_for(
                            queue.get(), governor.sample_interval))
                    except asyncio.TimeoutError:
                        await self._reassess_governor(loop)
                        continue
                else:
                    batch.append(await queue.get())
            if batch[0][0] != _OP_STOP and batch_max > 1:
                # one yield lets every already-runnable publisher enqueue, then the
                # batch takes whatever accumulated: coalescing adapts to load and
                # an idle queue flushes immediately (no waiting out a window)
                await asyncio.sleep(0)
                while len(batch) < batch_max and not queue.empty():
                    batch.append(queue.get_nowait())
                    if batch[-1][0] == _OP_STOP:
                        break
                if flush > 0 and not stopping:
                    # opt-in timed window: hold the batch open for stragglers
                    # until the deadline (trades latency for larger batches);
                    # pointless once stopping — nothing new can arrive
                    deadline = loop.time() + flush
                    while batch[-1][0] != _OP_STOP and len(batch) < batch_max:
                        remaining = deadline - loop.time()
                        if remaining <= 0:
                            break
                        try:
                            batch.append(await asyncio.wait_for(
                                queue.get(), remaining))
                        except asyncio.TimeoutError:
                            break
            self._counters["batches"] += 1
            if len(batch) > self._counters["largest_batch"]:
                self._counters["largest_batch"] = len(batch)
            await self._probe_bank_health(loop)
            await self._reassess_governor(loop)
            docs: List[tuple] = []
            for op in batch:
                if op[0] == _OP_DOC:
                    docs.append(op)
                    continue
                await self._run_docs(loop, docs)
                docs = []
                # bank mutations run in the executor like every other bank
                # interaction: a sharded register can block on the lifecycle
                # lock behind an in-progress worker spawn, and that wait must
                # not freeze the event loop.  Ordering is unaffected — the
                # worker awaits each op in place.
                if op[0] == _OP_SUB:
                    _tag, global_name, query, future = op
                    if future.cancelled():
                        continue  # awaiter gone: registering would orphan it
                    try:
                        await loop.run_in_executor(
                            None, self._bank.register, global_name, query)
                    except Exception as exc:
                        if not future.cancelled():
                            future.set_exception(exc)
                        continue
                    if future.cancelled():
                        # the awaiter vanished while we applied it: undo now,
                        # or the registration would survive unowned
                        try:
                            await loop.run_in_executor(
                                None, self._bank.unregister, global_name)
                        except Exception:  # pragma: no cover - defensive
                            pass
                        continue
                    future.set_result(query.to_xpath())
                elif op[0] == _OP_UNSUB:
                    _tag, global_name, future = op
                    if future.cancelled():
                        continue  # awaiter gone: leave its session state as-is
                    try:
                        await loop.run_in_executor(
                            None, self._bank.unregister, global_name)
                    except Exception as exc:
                        if not future.cancelled():
                            future.set_exception(exc)
                        continue
                    if future.cancelled():
                        # applied, but the awaiter (whose compensation handles
                        # only the result-was-set case) is gone: finish the
                        # caller-side bookkeeping here
                        route = self._routes.pop(global_name, None)
                        if route is not None:
                            route[0]._subs.pop(route[1], None)
                        continue
                    future.set_result(None)
                else:  # _OP_STOP: everything queued before it has been processed
                    stopping = True
            await self._run_docs(loop, docs)
            del batch[:]

    async def _probe_bank_health(self, loop) -> None:
        """Between-documents health probe: respawn shard workers that died.

        A respawn runs in the executor because it is real work (process spawn
        plus a full registration replay over a pipe) and must not stall the
        loop — the same rule every other bank interaction follows.
        """
        bank = self._bank
        if isinstance(bank, ShardedFilterBank):
            # the lock-free liveness check is a handful of non-blocking waitpid
            # probes — run it inline and pay the executor hop (and the lifecycle
            # lock) only when a dead worker actually needs respawning
            if not bank.has_dead_worker():
                return
            respawned = await loop.run_in_executor(None, bank.ensure_healthy)
            if respawned:
                self._counters["workers_respawned"] += len(respawned)

    # ------------------------------------------------------------------ governing
    def _effective_batch_max(self) -> int:
        """The batch coalescing bound, shrunk while the governor is degraded."""
        governor = self._governor
        if governor is None or governor.state < SOFT:
            return self._batch_max
        return min(self._batch_max, governor.soft_batch_max)

    async def _reassess_governor(self, loop) -> None:
        """Between-batches governor round: sample, walk the ladder, enforce.

        Runs at most once per ``sample_interval`` (a zero interval samples
        every batch — the deterministic-test configuration).  Enforcement on
        the sampled state:

        * entering SOFT or HARD from below compacts the publish log (space
          below retired cursors is the cheapest memory to give back);
        * at HARD, sessions whose delivery queue has stayed pinned full past
          the stall grace are evicted — queue shed, subscriptions
          unregistered, session closed — which is safe because their durable
          cursor survives in the log (at-least-once resume on reconnect).

        Admission rejection itself needs no action here: ``_admit`` reads
        ``governor.admitting`` synchronously on every publish.
        """
        governor = self._governor
        if governor is None:
            return
        now = loop.time()
        if now < self._governor_next_sample:
            return
        self._governor_next_sample = now + governor.sample_interval
        report = self._bank.memory_report()
        backlog = sum(session.pending_notifications()
                      for session in self._sessions.values())
        rss = current_rss_bytes()
        if rss is not None:
            rss += sum(report.worker_rss_bytes)
        queue = self._queue
        sample = GovernorSample(
            modeled_bits=(report.modeled_bits
                          + backlog * governor.notification_bits),
            rss_bytes=rss,
            backlog_notifications=backlog,
            queue_depth=queue.qsize() if queue is not None else 0,
        )
        previous = governor.state
        state = governor.observe(sample, now)
        if state > previous and self._publog is not None:
            # degradation entry: give back the log space below retired cursors
            if self._publog.compact(list(self._sessions)) > 0:
                governor.compactions += 1
                self._counters["compactions"] += 1
        tracker = self._stall
        if tracker is None:
            return
        if state >= HARD:
            limit = self._session_queue_size
            pinned = {
                session: session.pending_notifications() >= limit
                for session in self._sessions.values()
            }
            for session in tracker.update(pinned, now):
                await self._evict_session(loop, session)
        else:
            tracker.pinned_since.clear()

    async def _evict_session(self, loop, session: ClientSession) -> None:
        """Governor eviction of one pinned session (between batches only).

        Sheds the queued backlog, unregisters the session's subscriptions
        directly (we *are* the ingest worker — going through the ingest queue
        here could deadlock against a full queue), and closes the session.
        The durable cursor is deliberately NOT forgotten: it is what makes the
        eviction safe, and the publish log keeps every document above it for
        the client's at-least-once resume.
        """
        governor = self._governor
        session.evicted = True
        self._counters["notifications_shed"] += session._shed_pending()
        for local in list(session.subscription_queries()):
            global_name = self._global_name(session.client_id, local)
            self._routes.pop(global_name, None)
            try:
                await loop.run_in_executor(
                    None, self._bank.unregister, global_name)
            except Exception:  # pragma: no cover - defensive
                pass
        session._subs.clear()
        session._mark_closed()
        self._detach(session)
        if governor is not None:
            governor.clients_evicted += 1
        self._counters["clients_evicted"] += 1

    @property
    def governor(self) -> Optional[ResourceGovernor]:
        """The attached resource governor (``None`` when ungoverned)."""
        return self._governor

    @property
    def overloaded(self) -> bool:
        """Whether the governor is at its hard watermark (admissions rejected)."""
        governor = self._governor
        return governor is not None and not governor.admitting

    @property
    def overload_retry_after(self) -> float:
        """The retry hint (seconds) shipped with overload rejections."""
        governor = self._governor
        return governor.retry_after if governor is not None else 1.0

    async def _run_docs(self, loop, docs: List[tuple]) -> None:
        """Filter one batch-run of documents in a single executor call."""
        if not docs:
            return
        payloads = [op[1] for op in docs]
        outcomes = await loop.run_in_executor(None, self._filter_batch, payloads)
        for (_tag, _payload, future, doc_id, duplicate), outcome \
                in zip(docs, outcomes):
            if isinstance(outcome, BaseException):
                self._counters["documents_failed"] += 1
                if not future.cancelled():
                    future.set_exception(outcome)
                continue
            self._counters["published"] += 1
            matched: Tuple[str, ...] = tuple(outcome.matched)
            self._dispatch(doc_id, matched, duplicate=duplicate)
            if not future.cancelled():
                future.set_result((matched, outcome.per_query_stats))

    def _filter_batch(self, payloads: List[Publishable]) -> list:
        """Executor side: tokenize and filter each document, back to back.

        One thread-pool round trip serves the whole run; per-document failures are
        returned (not raised) so one malformed document cannot steal the batch —
        the engines guarantee a failed call leaves the bank reset and usable.
        """
        outcomes = []
        for payload in payloads:
            try:
                if isinstance(payload, str):
                    tokens = document_tokens(payload)
                elif isinstance(payload, XMLDocument):
                    tokens = event_tokens(payload.events())
                else:
                    tokens = iter(payload)
                outcomes.append(self._bank.filter_tokens(tokens))
            except Exception as exc:
                outcomes.append(exc)
        return outcomes

    def _dispatch(self, doc_id: int, matched: Tuple[str, ...], *,
                  duplicate: bool = False) -> None:
        """Fan a document's matched global names out to the owning sessions."""
        if not matched:
            return
        per_session: Dict[ClientSession, List[str]] = {}
        for global_name in matched:
            route = self._routes.get(global_name)
            if route is None:  # unsubscribed while the document was in flight
                continue
            session, local = route
            per_session.setdefault(session, []).append(local)
        for session, locals_ in per_session.items():
            if duplicate and doc_id <= session.cursor:
                # a recovery replay the client already acked: exactly-once at
                # or below the cursor, so this delivery must not happen
                continue
            session._deliver(Notification(document_id=doc_id,
                                          matched=tuple(locals_),
                                          duplicate=duplicate))
            self._counters["notifications"] += 1

    # ------------------------------------------------------------------ durability
    def ack_cursor(self, client_id: str, document_id: int) -> None:
        """Record that a client durably consumed every match up to a document.

        Advances the session's in-memory cursor (never backwards), appends a
        cursor record to the publish WAL on a durable service, and — when the
        log has outgrown its compaction threshold — compacts it below the
        minimum cursor of the currently connected sessions.  Unknown client
        ids are tolerated (the ack may race a disconnect); cursor regressions
        are ignored rather than rejected, because a reconnecting client may
        legitimately re-ack below its recorded position after replay.
        """
        session = self._sessions.get(client_id)
        if session is not None and document_id > session.cursor:
            session.cursor = document_id
        self._counters["acks"] += 1
        if self._publog is None:
            return
        self._publog.append_cursor(client_id, document_id)
        if self._publog.maybe_compact(list(self._sessions)) > 0:
            self._counters["compactions"] += 1

    @property
    def durable_dir(self) -> Optional[str]:
        """The durability directory, or ``None`` for an in-memory service."""
        return self._durable_dir

    def save_snapshot(self, path: Optional[str] = None) -> str:
        """Persist the service snapshot as JSON, atomically; returns the path.

        ``path`` defaults to ``snapshot.json`` inside the durable directory
        (required then).  The write goes through a temp file + ``os.replace``
        and is fsynced, so a crash mid-save leaves the previous snapshot
        intact.  :meth:`recover` reads this file back; cursor records in the
        WAL written after the save are merged on top at recovery.
        """
        if path is None:
            if self._durable_dir is None:
                raise ValueError("save_snapshot() needs a path on a "
                                 "non-durable service")
            path = os.path.join(self._durable_dir, SNAPSHOT_FILENAME)
        data = self.snapshot()
        tmp_path = path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(data, handle, indent=2)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        return path

    @classmethod
    def recover(cls, durable_dir: str, **overrides) -> "PubSubService":
        """Rebuild a crashed durable service from its directory.

        Reads the persisted snapshot (if any) for sessions and subscriptions,
        opens the publish WAL (truncating any torn tail), merges each
        session's snapshot cursor with its latest WAL cursor record (max
        wins), and queues the log's documents above the replay floor — the
        minimum cursor across the recovered sessions — for re-filtering.  The
        replay itself runs inside :meth:`start` (filtering needs the running
        event loop); until then the service is fully constructed but idle.
        Keyword overrides are passed to the constructor, as in
        :meth:`restore`.
        """
        overrides.setdefault("durable_dir", durable_dir)
        snapshot_path = os.path.join(durable_dir, SNAPSHOT_FILENAME)
        if os.path.exists(snapshot_path):
            with open(snapshot_path, "r", encoding="utf-8") as handle:
                service = cls.restore(json.load(handle), **overrides)
        else:
            service = cls(**overrides)
        publog = service._publog
        if publog is None:  # durable_dir overridden to None: nothing to replay
            return service
        scan = publog.scan()
        for client, logged_cursor in scan.cursors.items():
            session = service._sessions.get(client)
            if session is not None and logged_cursor > session.cursor:
                session.cursor = logged_cursor
        # document ids must keep increasing across the crash: continue above
        # everything the log has evidence of (cursors included — a compacted
        # log may hold a cursor beyond its oldest surviving document)
        highest = max(
            [logged.document_id for logged in scan.documents]
            + list(scan.cursors.values())
            + [session.cursor for session in service._sessions.values()]
            + [0])
        service._doc_ids = itertools.count(highest + 1)
        sessions = service._sessions.values()
        floor = min((session.cursor for session in sessions), default=0)
        service._replay = [logged for logged in scan.documents
                          if logged.document_id > floor]
        return service

    # ------------------------------------------------------------------ insight
    def metrics(self) -> dict:
        """Operational counters plus queue depth and session/subscription counts."""
        queue = self._queue
        return {
            **self._counters,
            "queue_depth": queue.qsize() if queue is not None else 0,
            "sessions": len(self._sessions),
            "subscriptions": len(self._bank),
            "dropped_notifications": self._dropped_closed + sum(
                s.dropped for s in self._sessions.values()),
            "wal_size_bytes": (self._publog.size_bytes
                               if self._publog is not None else 0),
            "governor": (self._governor.snapshot()
                         if self._governor is not None else None),
        }

    def health(self) -> dict:
        """A liveness snapshot: worker task state, queue depth, shard status."""
        bank = self._bank
        worker = self._worker
        return {
            "running": worker is not None and not worker.done(),
            "closing": self._closing,
            "stopped": self._stopped,
            "queue_depth": self._queue.qsize() if self._queue is not None else 0,
            "bank": type(bank).__name__,
            "stats_mode": self._stats,
            "durable": self._publog is not None,
            "workers": (bank.worker_status()
                        if isinstance(bank, ShardedFilterBank) else None),
            "governor_state": (self._governor.state_name
                               if self._governor is not None else None),
        }

    @property
    def bank(self):
        """The owned filter bank (read-only use; mutations must go through ops)."""
        return self._bank

    # ------------------------------------------------------------------ snapshots
    def snapshot(self) -> dict:
        """A JSON-able snapshot of the service's subscription state.

        Captures the bank configuration and, per session, the canonical XPath form
        of every subscription (exactly what the bank would re-parse), so a restarted
        service rebuilds its bank without any client re-subscribing.  In-flight
        documents and undelivered notifications are deliberately *not* captured —
        they are transient traffic, not state.  Must be taken *before* ``stop()``
        (which discards the sessions): snapshotting a stopped service raises
        instead of silently returning an empty-session snapshot.
        """
        if self._stopped:
            raise ServiceClosedError(
                "the service is stopped; snapshot() before stop()")
        return {
            "schema": SNAPSHOT_SCHEMA,
            "kind": "service",
            "bank": {
                "shards": self._shards,
                "stats": self._stats,
            },
            # global bank registration order: restore replays it so round-robin
            # shard assignment and matched/notification ordering survive the
            # restart (per-session lists alone would interleave differently)
            "registration_order": list(self._bank.subscription_queries()),
            "sessions": [
                {
                    "client": session.client_id,
                    "cursor": session.cursor,
                    "subscriptions": [
                        [local, canonical]
                        for local, canonical
                        in session.subscription_queries().items()
                    ],
                }
                for session in self._sessions.values()
            ],
        }

    @classmethod
    def restore(cls, snapshot: dict, **overrides) -> "PubSubService":
        """Rebuild a service (sessions, subscriptions, bank) from a snapshot.

        Keyword overrides are passed to the constructor in place of the snapshot's
        bank configuration (e.g. restore a sharded service in-process for a test).
        The bank is registered directly from the canonical query forms — no client
        interaction, no ingest traffic — and sessions come back under their old
        client ids with empty delivery queues.
        """
        try:
            snapshot = migrate_snapshot(snapshot)
        except ValueError:
            raise ValueError("unsupported service snapshot schema: "
                             f"{snapshot.get('schema')!r}") from None
        kind = snapshot.get("kind")
        if kind != "service" or not isinstance(snapshot.get("sessions"), list):
            raise ValueError(
                f"not a service snapshot (kind={kind!r}); bank-level snapshots "
                "are restored with repro.service.restore_bank")
        bank_config = snapshot.get("bank", {})
        config = {"shards": bank_config.get("shards"),
                  "stats": bool(bank_config.get("stats", False))}
        config.update(overrides)
        service = cls(**config)
        pending: Dict[str, tuple] = {}  # global name -> (session, local, text)
        for record in snapshot["sessions"]:
            client_id = record["client"]
            if ":" in client_id:  # same invariant connect() enforces
                raise ValueError(f"client id {client_id!r} must not contain ':'")
            if client_id in service._sessions:  # ditto: overwriting would
                raise ValueError(  # silently misroute the first record's subs
                    f"duplicate client {client_id!r} in service snapshot")
            session = ClientSession(service, client_id,
                                    queue_size=service._session_queue_size)
            session.cursor = int(record.get("cursor", 0))
            service._sessions[client_id] = session
            for local, canonical in record.get("subscriptions", []):
                pending[cls._global_name(client_id, local)] = \
                    (session, local, canonical)
        # replay in the snapshotted global registration order (falling back to
        # session order for any name the order list is missing), so round-robin
        # shard assignment and result ordering match the pre-restart service
        order = [name for name in snapshot.get("registration_order", [])
                 if name in pending]
        seen = set(order)
        order.extend(name for name in pending if name not in seen)
        for global_name in order:
            session, local, canonical = pending[global_name]
            service._bank.register(global_name, parse_query(canonical))
            service._routes[global_name] = (session, local)
            session._subs[local] = canonical
        return service
