"""Snapshot/restore of filter-bank subscription state, as JSON.

A long-lived service must survive restarts without every client re-issuing its
subscriptions.  The durable state of a bank is exactly its ``name -> query`` map —
compiled plans, tries and shard workers are all derived — and queries serialize
losslessly as their *canonical XPath form* (``query.to_xpath()``, the same string
used as the plan-interning key and shipped to shard workers).  A snapshot is
therefore a small JSON document::

    {"schema": 1,
     "kind": "sharded" | "compiled",
     "stats": false,
     "shards": 4,                    # sharded banks only, else null
     "subscriptions": [["name", "/catalog/product/s1[value > 3]"], ...]}

Restoring re-parses each canonical form and registers it under its original name in
the original order, so the restored bank interns plans identically, assigns
subscriptions to the same shards (round-robin is order-determined), and produces
:class:`~repro.core.filterbank.BankResult`\\ s identical to the snapshotted bank's on
any document stream — a property test asserts exactly that.  Service-level
snapshots (:meth:`~repro.service.server.PubSubService.snapshot`) add the session
layout on top of the same subscription records.

Schema history
--------------

* **1** — the original layout above.
* **2** — service-level session records gain a ``"cursor"`` field: the highest
  document id the client durably acknowledged, the baseline the durable publish
  log's cursor records are merged onto at recovery (see the durable package).
  Bank-level snapshots are structurally unchanged.

:func:`migrate_snapshot` lifts any historical schema to the current one, so
snapshots written before the durability layer restore cleanly (their cursors
default to ``0`` — replay everything still in the log, which at-least-once
delivery permits).
"""

from __future__ import annotations

import copy
import json
from typing import IO, Union

from ..core.compile import CompiledFilterBank
from ..core.shard import ShardedFilterBank
from ..xpath.parser import parse_query

#: current snapshot layout version (bank-level and service-level alike)
SNAPSHOT_SCHEMA = 2


def migrate_snapshot(snapshot: dict) -> dict:
    """Lift a snapshot of any supported schema to the current one.

    Returns the input untouched when it is already current; otherwise a
    migrated *copy* (the caller's dict is never mutated).  Unknown — including
    future — schemas raise ``ValueError``: downgrades are not guessable.
    """
    schema = snapshot.get("schema")
    if schema == SNAPSHOT_SCHEMA:
        return snapshot
    if schema != 1:
        raise ValueError(f"unsupported snapshot schema: {schema!r}")
    migrated = copy.deepcopy(snapshot)
    migrated["schema"] = SNAPSHOT_SCHEMA
    if migrated.get("kind") == "service":
        for record in migrated.get("sessions", []):
            # schema 1 predates delivery cursors: nothing was ever acked
            record.setdefault("cursor", 0)
    return migrated

BankLike = Union[CompiledFilterBank, ShardedFilterBank]


def snapshot_bank(bank: BankLike) -> dict:
    """Capture a bank's subscriptions (canonical forms) and configuration."""
    if isinstance(bank, ShardedFilterBank):
        kind, shards = "sharded", bank.shard_count
    elif isinstance(bank, CompiledFilterBank):
        kind, shards = "compiled", None
    else:
        raise TypeError(f"cannot snapshot a {type(bank).__name__}")
    return {
        "schema": SNAPSHOT_SCHEMA,
        "kind": kind,
        "stats": bank.stats_mode,
        "shards": shards,
        "subscriptions": [[name, canonical] for name, canonical
                          in bank.subscription_queries().items()],
    }


def restore_bank(snapshot: dict, **overrides) -> BankLike:
    """Rebuild a bank from a snapshot dict (keyword overrides win over it).

    ``kind``, ``stats`` and ``shards`` may be overridden — e.g. restore a sharded
    snapshot into an in-process bank, or flip a match-only bank to the
    statistics-accurate engine; the subscription set is restored either way, in
    its original registration order.
    """
    try:
        snapshot = migrate_snapshot(snapshot)
    except ValueError:
        raise ValueError(
            f"unsupported bank snapshot schema: {snapshot.get('schema')!r}"
        ) from None
    kind = overrides.get("kind", snapshot.get("kind"))
    if kind == "service":
        raise ValueError("this is a service-level snapshot; restore it with "
                         "PubSubService.restore")
    subscriptions = snapshot.get("subscriptions")
    if not isinstance(subscriptions, list):
        raise ValueError("not a bank snapshot: no 'subscriptions' list")
    stats = overrides.get("stats", snapshot.get("stats", False))
    shards = overrides.get("shards", snapshot.get("shards"))
    if kind == "sharded":
        bank: BankLike = ShardedFilterBank(shards, stats=stats)
    elif kind == "compiled":
        bank = CompiledFilterBank(stats=stats)
    else:
        raise ValueError(f"unknown bank kind: {kind!r}")
    for name, canonical in subscriptions:
        bank.register(name, parse_query(canonical))
    return bank


def dump_bank(bank: BankLike, file: IO[str]) -> None:
    """Write a bank snapshot as JSON to an open text file."""
    json.dump(snapshot_bank(bank), file, indent=2)
    file.write("\n")


def load_bank(file: IO[str], **overrides) -> BankLike:
    """Rebuild a bank from a JSON snapshot file (see :func:`restore_bank`)."""
    return restore_bank(json.load(file), **overrides)


def dumps_bank(bank: BankLike) -> str:
    """The bank snapshot as a JSON string."""
    return json.dumps(snapshot_bank(bank), indent=2)


def loads_bank(text: str, **overrides) -> BankLike:
    """Rebuild a bank from a JSON snapshot string (see :func:`restore_bank`)."""
    return restore_bank(json.loads(text), **overrides)
