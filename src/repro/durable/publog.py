"""The publish log: typed WAL records for documents and delivery cursors.

:class:`PublishLog` narrows the opaque :class:`~repro.durable.wal.WriteAheadLog`
to the two record types the pub/sub service needs for at-least-once delivery:

* a **document record** — ``b"D"`` + document id (u64 BE) + the document's XML
  text (UTF-8).  Written *before* the document is admitted to the ingest
  queue, so a crash after the append can always re-derive the publish.
* a **cursor record** — ``b"C"`` + document id (u64 BE) + the client id
  (UTF-8).  Written when a client durably acknowledges delivery of every
  match up to and including that document; the highest cursor per client is
  the replay lower bound for that client.

Recovery scans the log once (:meth:`PublishLog.scan`) and gets back the
documents in publish order plus the latest cursor per client; the service
re-delivers each document above a client's cursor, flagging those at or below
any *other* evidence of delivery as potential duplicates.

Compaction
----------

The log only needs documents that some live client might still have to
re-receive — everything at or below the *minimum* live cursor is dead weight.
:meth:`maybe_compact` rewrites the log (atomically, via the WAL's temp-file
``rewrite``) keeping only documents above that minimum plus one latest cursor
record per client, and only bothers when the log has grown past a size
threshold.  Compaction never moves a cursor and never drops a document a
cursor has not covered, so replay semantics are unchanged by it.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, List, NamedTuple, Optional, Tuple

from .wal import WalRecord, WriteAheadLog

_DOC_ID = struct.Struct("!Q")

#: record type tags (first payload byte after the LSN)
_TAG_DOC = b"D"
_TAG_CURSOR = b"C"

#: default compaction trigger: don't rewrite logs smaller than this
DEFAULT_COMPACT_THRESHOLD = 1 << 20


class LoggedDocument(NamedTuple):
    """A recovered document record: its id, text, and WAL sequence number."""

    document_id: int
    text: str
    lsn: int


class LogScan(NamedTuple):
    """Everything one pass over the log yields for recovery."""

    documents: List[LoggedDocument]
    cursors: Dict[str, int]


def _encode_doc(document_id: int, text: str) -> bytes:
    return _TAG_DOC + _DOC_ID.pack(document_id) + text.encode("utf-8")


def _encode_cursor(client: str, document_id: int) -> bytes:
    return _TAG_CURSOR + _DOC_ID.pack(document_id) + client.encode("utf-8")


def _decode(record: WalRecord) -> Optional[Tuple[bytes, int, str]]:
    body = record.body
    if len(body) < 1 + _DOC_ID.size:
        return None
    tag = body[:1]
    if tag not in (_TAG_DOC, _TAG_CURSOR):
        return None
    (document_id,) = _DOC_ID.unpack_from(body, 1)
    try:
        text = body[1 + _DOC_ID.size:].decode("utf-8")
    except UnicodeDecodeError:
        return None
    return tag, document_id, text


class PublishLog:
    """Typed document/cursor records over a single write-ahead log file."""

    def __init__(self, path: str, *, fsync: str = "interval",
                 fsync_interval: float = 0.05,
                 compact_threshold: int = DEFAULT_COMPACT_THRESHOLD) -> None:
        self._wal = WriteAheadLog(path, fsync=fsync,
                                  fsync_interval=fsync_interval)
        self._compact_threshold = compact_threshold
        # latest known cursor per client, kept in memory so compaction and
        # duplicate detection don't need a log scan per ack
        self._cursors: Dict[str, int] = {}
        for record in self._wal.records():
            decoded = _decode(record)
            if decoded is not None and decoded[0] == _TAG_CURSOR:
                _tag, document_id, client = decoded
                if document_id > self._cursors.get(client, 0):
                    self._cursors[client] = document_id

    # ------------------------------------------------------------------ writing
    def append_document(self, document_id: int, text: str) -> int:
        """Log a publish before it is admitted; returns the record's LSN."""
        return self._wal.append(_encode_doc(document_id, text))

    def append_cursor(self, client: str, document_id: int) -> int:
        """Log a client's delivery cursor advancing to ``document_id``.

        Cursors only move forward; a stale ack (at or below the recorded
        cursor) is logged anyway for simplicity but does not move the
        in-memory cursor, so replay bounds never regress.
        """
        lsn = self._wal.append(_encode_cursor(client, document_id))
        if document_id > self._cursors.get(client, 0):
            self._cursors[client] = document_id
        return lsn

    def sync(self) -> None:
        self._wal.sync()

    def close(self) -> None:
        self._wal.close()

    # ------------------------------------------------------------------ reading
    def scan(self) -> LogScan:
        """One recovery pass: documents in publish order + latest cursors."""
        documents: List[LoggedDocument] = []
        cursors: Dict[str, int] = {}
        for record in self._wal.records():
            decoded = _decode(record)
            if decoded is None:
                continue
            tag, document_id, text = decoded
            if tag == _TAG_DOC:
                documents.append(LoggedDocument(document_id, text, record.lsn))
            elif document_id > cursors.get(text, 0):
                cursors[text] = document_id
        return LogScan(documents, cursors)

    def cursor(self, client: str) -> int:
        """The client's latest logged cursor (0 if it never acked)."""
        return self._cursors.get(client, 0)

    def cursors(self) -> Dict[str, int]:
        """A copy of every client's latest logged cursor."""
        return dict(self._cursors)

    def forget(self, client: str) -> int:
        """Drop a disconnected client's cursor from the compaction floor.

        Removing a departed laggard's cursor can *raise* the retention floor,
        so this immediately re-checks the size-gated compaction instead of
        waiting for the next publish burst's ack to notice — a departed client
        must not pin the log in the meantime.  Returns the bytes freed by that
        opportunistic compaction (0 when the client had no cursor or the log
        is still under the threshold).
        """
        if self._cursors.pop(client, None) is None:
            return 0
        return self.maybe_compact()

    @property
    def size_bytes(self) -> int:
        return self._wal.size_bytes

    @property
    def path(self) -> str:
        return self._wal.path

    # ------------------------------------------------------------------ compaction
    def _retention_floor(self, live_clients: Optional[Iterable[str]]) -> int:
        """Documents at or below this id are safe to discard."""
        if live_clients is None:
            relevant = list(self._cursors.values())
        else:
            relevant = [self._cursors.get(c, 0) for c in live_clients]
        if not relevant:
            return 0  # no cursor evidence: keep everything
        return min(relevant)

    def compact(self, live_clients: Optional[Iterable[str]] = None) -> int:
        """Rewrite the log below the minimum live cursor; returns bytes freed.

        Keeps every document record above the floor and the single latest
        cursor record per client (older cursor records are subsumed).  With
        ``live_clients`` given, only those clients' cursors bound the floor —
        a departed client must not pin the log forever; without it, every
        cursor ever logged counts (conservative).
        """
        floor = self._retention_floor(live_clients)
        before = self._wal.size_bytes
        latest_cursor_lsn: Dict[str, int] = {}
        for record in self._wal.records():
            decoded = _decode(record)
            if decoded is not None and decoded[0] == _TAG_CURSOR:
                latest_cursor_lsn[decoded[2]] = record.lsn
        keep: List[WalRecord] = []
        for record in self._wal.records():
            decoded = _decode(record)
            if decoded is None:
                continue
            tag, document_id, text = decoded
            if tag == _TAG_DOC:
                if document_id > floor:
                    keep.append(record)
            elif latest_cursor_lsn.get(text) == record.lsn:
                keep.append(record)
        self._wal.rewrite(keep)
        return before - self._wal.size_bytes

    def maybe_compact(self,
                      live_clients: Optional[Iterable[str]] = None) -> int:
        """Compact only once the log outgrows the size threshold."""
        if self._wal.size_bytes < self._compact_threshold:
            return 0
        return self.compact(live_clients)

    def __enter__(self) -> "PublishLog":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
