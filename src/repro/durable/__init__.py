"""Durability primitives: the write-ahead log and the typed publish log.

This package is what turns the pub/sub service's delivery from best-effort
into at-least-once: :class:`WriteAheadLog` is the generic CRC-framed,
LSN-stamped append-only log (torn-write-tolerant reader, configurable fsync
policy), and :class:`PublishLog` layers the service's two record types on it —
published documents and per-client delivery cursors — plus cursor-floor
compaction.  See DESIGN.md's "Durability" section for the invariants.
"""

from .publog import (
    DEFAULT_COMPACT_THRESHOLD,
    LoggedDocument,
    LogScan,
    PublishLog,
)
from .wal import (
    FSYNC_POLICIES,
    WalError,
    WalRecord,
    WriteAheadLog,
    scan_wal,
)

__all__ = [
    "DEFAULT_COMPACT_THRESHOLD",
    "FSYNC_POLICIES",
    "LoggedDocument",
    "LogScan",
    "PublishLog",
    "WalError",
    "WalRecord",
    "WriteAheadLog",
    "scan_wal",
]
