"""The append-only write-ahead log: CRC-framed, LSN-stamped records on disk.

A :class:`WriteAheadLog` is the durability primitive under the pub/sub service's
at-least-once delivery: callers append opaque record bodies *before* acting on
them, and a crashed process replays the log tail on restart instead of losing
its in-flight work.  One record on disk is::

    +------------------+----------------+--------------------------+
    | length (u32 BE)  | crc32 (u32 BE) | payload                  |
    +------------------+----------------+--------------------------+
                                          payload = lsn (u64 BE) + body

``length`` covers the payload only; ``crc32`` is computed over the payload, so
a record is self-validating.  The *log sequence number* is assigned by the log,
strictly monotonic across appends — it survives compaction (retained records
keep their original LSNs) and restarts (the next LSN continues above the last
valid record on disk), so an LSN names one append forever.

Torn writes
-----------

A crash can truncate the file mid-record (or, with ``fsync='never'``, leave a
partially-persisted tail after an OS crash).  The reader treats the first
record that fails validation — a length running past EOF, a CRC mismatch, a
non-monotonic LSN — as the end of the log and stops *there*, returning every
record before it: a torn tail costs the torn record, never the log.  Opening a
log for appending truncates such a tail away first, so new records are never
written after garbage (they would be unreachable behind the reader's stop).

Fsync policy
------------

Every append is flushed to the operating system (a ``kill -9`` of the process
therefore loses nothing already appended); how often the OS buffers are forced
to the device is the ``fsync`` policy:

* ``'always'`` — fsync after every append.  Survives power loss per record;
  the slowest option (one device round trip per append).
* ``'interval'`` — fsync at most every ``fsync_interval`` seconds, checked at
  append time (plus on :meth:`sync`/:meth:`close`).  Bounds the power-loss
  window to the interval at near-``'never'`` throughput; the default.
* ``'never'`` — flush only.  Process crashes lose nothing; an OS crash may
  lose the un-synced tail (which the torn-tail reader then skips cleanly).
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from typing import Iterable, Iterator, List, NamedTuple, Optional

#: record framing: payload length (u32 BE) + crc32 of the payload (u32 BE)
_HEAD = struct.Struct("!II")
#: payload prefix: the record's log sequence number (u64 BE)
_LSN = struct.Struct("!Q")

#: accepted fsync policies (see module docstring)
FSYNC_POLICIES = ("always", "interval", "never")


class WalRecord(NamedTuple):
    """One validated log record: its sequence number and opaque body."""

    lsn: int
    body: bytes


class WalError(ValueError):
    """Raised for unusable logs (bad policy, closed log, rewrite misuse)."""


def _encode(lsn: int, body: bytes) -> bytes:
    payload = _LSN.pack(lsn) + body
    return _HEAD.pack(len(payload), zlib.crc32(payload)) + payload


def scan_wal(path: str) -> Iterator[WalRecord]:
    """Yield the valid record prefix of a log file (torn-write tolerant).

    Stops silently at the first record that fails validation: a header or
    payload truncated by EOF, a CRC mismatch, or an LSN that does not increase
    — everything before it is intact (CRC-verified) and is yielded in order.
    A missing file is an empty log.
    """
    try:
        handle = open(path, "rb")
    except FileNotFoundError:
        return
    last_lsn = 0
    with handle:
        while True:
            head = handle.read(_HEAD.size)
            if len(head) < _HEAD.size:
                return  # clean EOF between records, or a torn header
            length, crc = _HEAD.unpack(head)
            if length < _LSN.size:
                return  # garbage length: a payload cannot be shorter than its LSN
            payload = handle.read(length)
            if len(payload) < length:
                return  # torn payload
            if zlib.crc32(payload) != crc:
                return  # corrupt record: stop, do not resynchronize past it
            (lsn,) = _LSN.unpack_from(payload)
            if lsn <= last_lsn:
                return  # LSNs are strictly monotonic; a repeat is corruption
            last_lsn = lsn
            yield WalRecord(lsn, payload[_LSN.size:])


class WriteAheadLog:
    """An append-only record log with CRC framing and monotonic LSNs.

    Opening a path scans its valid record prefix (so the next LSN continues
    where the log left off) and truncates any torn tail before appending.
    """

    def __init__(self, path: str, *, fsync: str = "interval",
                 fsync_interval: float = 0.05) -> None:
        if fsync not in FSYNC_POLICIES:
            raise WalError(f"unknown fsync policy {fsync!r}; "
                           f"expected one of {FSYNC_POLICIES}")
        self.path = path
        self._fsync = fsync
        self._fsync_interval = max(0.0, fsync_interval)
        self._last_sync = time.monotonic()
        last_lsn, valid_bytes = self._scan_tail()
        if os.path.exists(path) and os.path.getsize(path) > valid_bytes:
            # torn tail from a previous crash: cut it before appending, or the
            # new records would sit behind the reader's corruption stop
            with open(path, "r+b") as handle:
                handle.truncate(valid_bytes)
        self._file: Optional[object] = open(path, "ab")
        self._next_lsn = last_lsn + 1
        self._size = valid_bytes

    def _scan_tail(self) -> "tuple[int, int]":
        last_lsn = 0
        valid_bytes = 0
        for record in scan_wal(self.path):
            last_lsn = record.lsn
            valid_bytes += _HEAD.size + _LSN.size + len(record.body)
        return last_lsn, valid_bytes

    # ------------------------------------------------------------------ appending
    def append(self, body: bytes) -> int:
        """Append one record, flush it to the OS, and return its LSN.

        Durability beyond the OS (device-level) follows the fsync policy; the
        flush alone already makes the record survive a process ``kill -9``.
        """
        if self._file is None:
            raise WalError("the log is closed")
        lsn = self._next_lsn
        encoded = _encode(lsn, body)
        self._file.write(encoded)  # type: ignore[attr-defined]
        self._file.flush()  # type: ignore[attr-defined]
        self._next_lsn = lsn + 1
        self._size += len(encoded)
        if self._fsync == "always":
            os.fsync(self._file.fileno())  # type: ignore[attr-defined]
        elif self._fsync == "interval":
            now = time.monotonic()
            if now - self._last_sync >= self._fsync_interval:
                os.fsync(self._file.fileno())  # type: ignore[attr-defined]
                self._last_sync = now
        return lsn

    def sync(self) -> None:
        """Force the log to the device now (regardless of policy, unless closed)."""
        if self._file is None:
            return
        self._file.flush()  # type: ignore[attr-defined]
        if self._fsync != "never":
            os.fsync(self._file.fileno())  # type: ignore[attr-defined]
        self._last_sync = time.monotonic()

    def close(self) -> None:
        """Sync (per policy) and close the log (idempotent)."""
        if self._file is None:
            return
        self.sync()
        self._file.close()  # type: ignore[attr-defined]
        self._file = None

    # ------------------------------------------------------------------ reading
    def records(self) -> List[WalRecord]:
        """Every valid record currently in the log, in LSN order."""
        if self._file is not None:
            self._file.flush()  # type: ignore[attr-defined]
        return list(scan_wal(self.path))

    @property
    def size_bytes(self) -> int:
        """Bytes of valid records on disk (the compaction trigger input)."""
        return self._size

    @property
    def next_lsn(self) -> int:
        """The LSN the next append will receive."""
        return self._next_lsn

    # ------------------------------------------------------------------ compaction
    def rewrite(self, records: Iterable[WalRecord]) -> None:
        """Atomically replace the log's contents with the given records.

        The compaction primitive: the caller passes the records worth keeping
        (a subsequence of :meth:`records`, so LSNs stay strictly monotonic) and
        the log is rewritten via a temp file + ``os.replace``, then reopened
        for appending — a crash during the rewrite leaves either the old or the
        new file, never a mix.  LSN assignment is unaffected: retained records
        keep their LSNs and the next append continues above the old maximum.
        """
        if self._file is None:
            raise WalError("the log is closed")
        tmp_path = self.path + ".compact"
        last_lsn = 0
        size = 0
        with open(tmp_path, "wb") as tmp:
            for record in records:
                if record.lsn <= last_lsn:
                    raise WalError("rewrite records must keep strictly "
                                   "increasing LSNs")
                last_lsn = record.lsn
                encoded = _encode(record.lsn, record.body)
                tmp.write(encoded)
                size += len(encoded)
            tmp.flush()
            if self._fsync != "never":
                os.fsync(tmp.fileno())
        self._file.close()  # type: ignore[attr-defined]
        os.replace(tmp_path, self.path)
        self._file = open(self.path, "ab")
        self._size = size
        # LSNs never move backwards, even when the rewrite dropped the tail
        self._next_lsn = max(self._next_lsn, last_lsn + 1)

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
