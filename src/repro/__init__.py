"""repro: a reproduction of "On the Memory Requirements of XPath Evaluation over XML
Streams" (Bar-Yossef, Fontoura, Josifovski; PODS 2004 / JCSS 2007).

The package is organised as follows:

* :mod:`repro.xmlstream`   -- XML data model, SAX event streams, parsing, generation
* :mod:`repro.xpath`       -- Forward XPath parser, query trees, predicates, truth sets
* :mod:`repro.semantics`   -- reference evaluator, matchings, homomorphisms
* :mod:`repro.core`        -- Redundancy-free XPath, frontiers, canonical documents,
                              and the streaming filtering algorithm (the paper's
                              contribution)
* :mod:`repro.lowerbounds` -- communication-complexity machinery and the three
                              lower-bound document families
* :mod:`repro.baselines`   -- DOM / NFA / DFA baselines for the memory comparison
* :mod:`repro.workloads`   -- query and document workload generators
* :mod:`repro.instrument`  -- bit-level memory accounting models
* :mod:`repro.service`     -- the long-lived asyncio pub/sub service layer
* :mod:`repro.net`         -- the TCP wire protocol, server and client over it

Quick start::

    from repro import parse_query, parse_document, filter_document

    query = parse_query("/catalog/book[price < 20]")
    document = parse_document("<catalog><book><price>12</price></book></catalog>")
    assert filter_document(query, document)
"""

from .core import (
    CompiledFilterBank,
    FilterBank,
    StreamingFilter,
    build_canonical_document,
    classify,
    filter_document,
    filter_events,
    filter_with_statistics,
    is_redundancy_free,
    query_frontier_size,
    trace_run,
)
from .semantics import bool_eval, full_eval, full_eval_values
from .xmlstream import StreamingParser, XMLDocument, XMLNode, parse_document, parse_events
from .xpath import Query, parse_query

__version__ = "1.1.0"

__all__ = [
    "CompiledFilterBank",
    "FilterBank",
    "Query",
    "StreamingFilter",
    "StreamingParser",
    "XMLDocument",
    "XMLNode",
    "__version__",
    "bool_eval",
    "build_canonical_document",
    "classify",
    "filter_document",
    "filter_events",
    "filter_with_statistics",
    "full_eval",
    "full_eval_values",
    "is_redundancy_free",
    "parse_document",
    "parse_events",
    "parse_query",
    "query_frontier_size",
    "trace_run",
]
